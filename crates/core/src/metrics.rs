//! Training metrics: per-round rows (matching the artifact's CSV schema),
//! component timers for the Fig. 14 latency breakdown, and CSV output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One training round's record. Columns mirror the paper artifact's output
/// CSV: "training round index, round duration, number of learner functions
/// invoked per training iteration, episodes executed, evaluation rewards,
/// staleness, and training cost".
#[derive(Clone, Copy, Debug)]
pub struct TrainRow {
    /// Round index (0-based).
    pub round: usize,
    /// Wall-clock seconds since training start.
    pub wall_time_s: f64,
    /// Seconds spent in this round.
    pub round_duration_s: f64,
    /// Learner-function invocations during this round.
    pub learner_invocations: u64,
    /// Episodes completed during this round.
    pub episodes: u64,
    /// Evaluation episodic reward at round end.
    pub reward: f32,
    /// Mean staleness of gradients aggregated this round.
    pub mean_staleness: f64,
    /// Cumulative training cost (USD) so far.
    pub cost_usd: f64,
    /// Learner-side share of the cumulative cost.
    pub learner_cost_usd: f64,
    /// Actor-side share of the cumulative cost.
    pub actor_cost_usd: f64,
    /// Policy updates performed so far.
    pub policy_updates: u64,
    /// Mean KL divergence between successive round policies (Fig. 3c).
    pub policy_kl: f32,
}

impl TrainRow {
    /// CSV header matching [`TrainRow::to_csv`].
    pub const CSV_HEADER: &'static str = "round,wall_time_s,round_duration_s,learner_invocations,episodes,reward,mean_staleness,cost_usd,learner_cost_usd,actor_cost_usd,policy_updates,policy_kl";

    /// Serialises as one CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{:.3},{:.3},{},{},{:.3},{:.3},{:.8},{:.8},{:.8},{},{:.6}",
            self.round,
            self.wall_time_s,
            self.round_duration_s,
            self.learner_invocations,
            self.episodes,
            self.reward,
            self.mean_staleness,
            self.cost_usd,
            self.learner_cost_usd,
            self.actor_cost_usd,
            self.policy_updates,
            self.policy_kl,
        )
    }
}

/// Writes rows to a CSV string (and optionally a file).
pub fn rows_to_csv(rows: &[TrainRow]) -> String {
    let mut out = String::from(TrainRow::CSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&r.to_csv());
        out.push('\n');
    }
    out
}

/// Thread-safe accumulating timers for the one-round latency breakdown
/// (Fig. 14 components).
#[derive(Debug, Default)]
pub struct Timers {
    /// Actor-environment sampling.
    pub actor_sampling_us: AtomicU64,
    /// Data-loader batching/staging (GAE, minibatching).
    pub data_loading_us: AtomicU64,
    /// Learner gradient computation.
    pub gradient_us: AtomicU64,
    /// Parameter-function aggregation + policy update.
    pub aggregation_us: AtomicU64,
    /// Serverless startup overhead (cold/warm starts).
    pub startup_us: AtomicU64,
    /// Policy/trajectory (de)serialisation + cache traffic.
    pub cache_us: AtomicU64,
}

impl Timers {
    /// Adds a duration to a counter.
    pub fn add(counter: &AtomicU64, d: Duration) {
        counter.fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Snapshot in seconds per component.
    pub fn report(&self) -> TimerReport {
        let s = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64 / 1e6;
        TimerReport {
            actor_sampling_s: s(&self.actor_sampling_us),
            data_loading_s: s(&self.data_loading_us),
            gradient_s: s(&self.gradient_us),
            aggregation_s: s(&self.aggregation_us),
            startup_s: s(&self.startup_us),
            cache_s: s(&self.cache_us),
        }
    }
}

/// Plain-number snapshot of [`Timers`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimerReport {
    /// Actor-environment sampling seconds.
    pub actor_sampling_s: f64,
    /// Data-loader seconds.
    pub data_loading_s: f64,
    /// Gradient computation seconds.
    pub gradient_s: f64,
    /// Aggregation seconds.
    pub aggregation_s: f64,
    /// Startup overhead seconds.
    pub startup_s: f64,
    /// Cache/serialisation seconds.
    pub cache_s: f64,
}

impl TimerReport {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.actor_sampling_s
            + self.data_loading_s
            + self.gradient_s
            + self.aggregation_s
            + self.startup_s
            + self.cache_s
    }

    /// Overhead share: everything that is neither sampling nor gradient
    /// compute (the paper's "<5% delay" claim covers these components).
    pub fn overhead_fraction(&self) -> f64 {
        let overhead = self.data_loading_s + self.aggregation_s + self.startup_s + self.cache_s;
        let total = self.total();
        if total <= 0.0 {
            0.0
        } else {
            overhead / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> TrainRow {
        TrainRow {
            round: 2,
            wall_time_s: 10.5,
            round_duration_s: 5.25,
            learner_invocations: 12,
            episodes: 34,
            reward: 123.4,
            mean_staleness: 1.5,
            cost_usd: 0.01,
            learner_cost_usd: 0.007,
            actor_cost_usd: 0.003,
            policy_updates: 9,
            policy_kl: 0.002,
        }
    }

    #[test]
    fn csv_roundtrips_field_count() {
        let line = row().to_csv();
        assert_eq!(
            line.split(',').count(),
            TrainRow::CSV_HEADER.split(',').count()
        );
        let csv = rows_to_csv(&[row(), row()]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("round,"));
    }

    #[test]
    fn timers_accumulate_and_report() {
        let t = Timers::default();
        Timers::add(&t.gradient_us, Duration::from_millis(1500));
        Timers::add(&t.gradient_us, Duration::from_millis(500));
        Timers::add(&t.startup_us, Duration::from_millis(100));
        let r = t.report();
        assert!((r.gradient_s - 2.0).abs() < 1e-6);
        assert!((r.startup_s - 0.1).abs() < 1e-6);
        assert!((r.total() - 2.1).abs() < 1e-6);
    }

    #[test]
    fn overhead_fraction_excludes_sampling_and_gradients() {
        let r = TimerReport {
            actor_sampling_s: 8.0,
            gradient_s: 1.5,
            data_loading_s: 0.2,
            aggregation_s: 0.2,
            startup_s: 0.05,
            cache_s: 0.05,
        };
        assert!((r.overhead_fraction() - 0.5 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timers_zero_fraction() {
        assert_eq!(TimerReport::default().overhead_fraction(), 0.0);
    }
}
