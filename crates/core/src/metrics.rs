//! Training metrics: per-round rows (matching the artifact's CSV schema),
//! component timers for the Fig. 14 latency breakdown, and CSV output.
//!
//! The Fig. 14 breakdown is measured with telemetry spans: call sites open
//! a [`Timers::span`] guard for a [`Component`], and on drop the elapsed
//! time feeds (a) the per-run atomic counter behind [`TimerReport`],
//! (b) the global `stellaris_core_latency_us_<component>` histogram, and
//! (c) a `core.<component>` trace span when tracing is enabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use stellaris_telemetry as telemetry;
use stellaris_telemetry::Histogram;

/// One training round's record. Columns mirror the paper artifact's output
/// CSV: "training round index, round duration, number of learner functions
/// invoked per training iteration, episodes executed, evaluation rewards,
/// staleness, and training cost".
#[derive(Clone, Copy, Debug)]
pub struct TrainRow {
    /// Round index (0-based).
    pub round: usize,
    /// Wall-clock seconds since training start.
    pub wall_time_s: f64,
    /// Seconds spent in this round.
    pub round_duration_s: f64,
    /// Learner-function invocations during this round.
    pub learner_invocations: u64,
    /// Episodes completed during this round.
    pub episodes: u64,
    /// Evaluation episodic reward at round end.
    pub reward: f32,
    /// Mean staleness of gradients aggregated this round.
    pub mean_staleness: f64,
    /// Cumulative training cost (USD) so far.
    pub cost_usd: f64,
    /// Learner-side share of the cumulative cost.
    pub learner_cost_usd: f64,
    /// Actor-side share of the cumulative cost.
    pub actor_cost_usd: f64,
    /// Policy updates performed so far.
    pub policy_updates: u64,
    /// Mean KL divergence between successive round policies (Fig. 3c).
    pub policy_kl: f32,
}

impl TrainRow {
    /// CSV header matching [`TrainRow::to_csv`].
    pub const CSV_HEADER: &'static str = "round,wall_time_s,round_duration_s,learner_invocations,episodes,reward,mean_staleness,cost_usd,learner_cost_usd,actor_cost_usd,policy_updates,policy_kl";

    /// Serialises as one CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{:.3},{:.3},{},{},{:.3},{:.3},{:.8},{:.8},{:.8},{},{:.6}",
            self.round,
            self.wall_time_s,
            self.round_duration_s,
            self.learner_invocations,
            self.episodes,
            self.reward,
            self.mean_staleness,
            self.cost_usd,
            self.learner_cost_usd,
            self.actor_cost_usd,
            self.policy_updates,
            self.policy_kl,
        )
    }
}

/// Writes rows to a CSV string (and optionally a file).
pub fn rows_to_csv(rows: &[TrainRow]) -> String {
    let mut out = String::from(TrainRow::CSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&r.to_csv());
        out.push('\n');
    }
    out
}

/// Thread-safe accumulating timers for the one-round latency breakdown
/// (Fig. 14 components).
#[derive(Debug, Default)]
pub struct Timers {
    /// Actor-environment sampling.
    pub actor_sampling_us: AtomicU64,
    /// Data-loader batching/staging (GAE, minibatching).
    pub data_loading_us: AtomicU64,
    /// Learner gradient computation.
    pub gradient_us: AtomicU64,
    /// Parameter-function aggregation + policy update.
    pub aggregation_us: AtomicU64,
    /// Serverless startup overhead (cold/warm starts).
    pub startup_us: AtomicU64,
    /// Policy/trajectory (de)serialisation + cache traffic.
    pub cache_us: AtomicU64,
}

/// One component of the Fig. 14 latency breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Actor-environment sampling.
    ActorSampling,
    /// Data-loader batching/staging (GAE, minibatching).
    DataLoading,
    /// Learner gradient computation.
    Gradient,
    /// Parameter-function aggregation + policy update.
    Aggregation,
    /// Serverless startup overhead (cold/warm starts).
    Startup,
    /// Policy/trajectory (de)serialisation + cache traffic.
    Cache,
}

impl Component {
    /// All components, in [`TimerReport`] field order.
    pub const ALL: [Component; 6] = [
        Component::ActorSampling,
        Component::DataLoading,
        Component::Gradient,
        Component::Aggregation,
        Component::Startup,
        Component::Cache,
    ];

    /// Short snake_case component name.
    pub fn name(self) -> &'static str {
        match self {
            Component::ActorSampling => "actor_sampling",
            Component::DataLoading => "data_loading",
            Component::Gradient => "gradient",
            Component::Aggregation => "aggregation",
            Component::Startup => "startup",
            Component::Cache => "cache",
        }
    }

    /// Trace span name (`core.<component>`).
    pub fn span_name(self) -> &'static str {
        match self {
            Component::ActorSampling => "core.actor_sampling",
            Component::DataLoading => "core.data_loading",
            Component::Gradient => "core.gradient",
            Component::Aggregation => "core.aggregation",
            Component::Startup => "core.startup",
            Component::Cache => "core.cache",
        }
    }

    fn index(self) -> usize {
        match self {
            Component::ActorSampling => 0,
            Component::DataLoading => 1,
            Component::Gradient => 2,
            Component::Aggregation => 3,
            Component::Startup => 4,
            Component::Cache => 5,
        }
    }
}

/// Global per-component latency histograms, resolved once.
fn component_histograms() -> &'static [Arc<Histogram>; 6] {
    static HISTS: OnceLock<[Arc<Histogram>; 6]> = OnceLock::new();
    HISTS.get_or_init(|| {
        Component::ALL.map(|c| {
            telemetry::global().histogram(&format!("stellaris_core_latency_us_{}", c.name()))
        })
    })
}

/// RAII guard from [`Timers::span`]: on drop, the elapsed time is added to
/// the run's [`Timers`] counter, recorded into the component's global
/// latency histogram, and emitted as a `core.<component>` trace span.
#[must_use = "a component span records its duration when dropped"]
pub struct ComponentSpan<'a> {
    timers: &'a Timers,
    component: Component,
    start_us: u64,
    _trace: telemetry::SpanGuard,
}

impl Drop for ComponentSpan<'_> {
    fn drop(&mut self) {
        let elapsed = telemetry::now_us().saturating_sub(self.start_us);
        self.timers.add_us(self.component, elapsed);
    }
}

impl Timers {
    /// Adds a duration to a counter (saturating at `u64::MAX` µs rather
    /// than truncating the 128-bit microsecond count).
    pub fn add(counter: &AtomicU64, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        counter.fetch_add(us, Ordering::Relaxed);
    }

    fn counter(&self, c: Component) -> &AtomicU64 {
        match c {
            Component::ActorSampling => &self.actor_sampling_us,
            Component::DataLoading => &self.data_loading_us,
            Component::Gradient => &self.gradient_us,
            Component::Aggregation => &self.aggregation_us,
            Component::Startup => &self.startup_us,
            Component::Cache => &self.cache_us,
        }
    }

    /// Adds `us` microseconds to `c`'s counter and the matching global
    /// latency histogram.
    pub fn add_us(&self, c: Component, us: u64) {
        self.counter(c).fetch_add(us, Ordering::Relaxed);
        component_histograms()[c.index()].record(us);
    }

    /// Records a duration against a component (counter + histogram).
    pub fn record(&self, c: Component, d: Duration) {
        self.add_us(c, u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Opens a timing span for `c`: the returned guard accumulates its
    /// lifetime into this `Timers` (feeding [`TimerReport`]) and emits a
    /// trace span when tracing is enabled.
    pub fn span(&self, c: Component) -> ComponentSpan<'_> {
        ComponentSpan {
            timers: self,
            component: c,
            start_us: telemetry::now_us(),
            _trace: telemetry::span(c.span_name()),
        }
    }

    /// Snapshot in seconds per component.
    pub fn report(&self) -> TimerReport {
        let s = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64 / 1e6;
        TimerReport {
            actor_sampling_s: s(&self.actor_sampling_us),
            data_loading_s: s(&self.data_loading_us),
            gradient_s: s(&self.gradient_us),
            aggregation_s: s(&self.aggregation_us),
            startup_s: s(&self.startup_us),
            cache_s: s(&self.cache_us),
        }
    }
}

/// Plain-number snapshot of [`Timers`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimerReport {
    /// Actor-environment sampling seconds.
    pub actor_sampling_s: f64,
    /// Data-loader seconds.
    pub data_loading_s: f64,
    /// Gradient computation seconds.
    pub gradient_s: f64,
    /// Aggregation seconds.
    pub aggregation_s: f64,
    /// Startup overhead seconds.
    pub startup_s: f64,
    /// Cache/serialisation seconds.
    pub cache_s: f64,
}

impl TimerReport {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.actor_sampling_s
            + self.data_loading_s
            + self.gradient_s
            + self.aggregation_s
            + self.startup_s
            + self.cache_s
    }

    /// Overhead share: everything that is neither sampling nor gradient
    /// compute (the paper's "<5% delay" claim covers these components).
    pub fn overhead_fraction(&self) -> f64 {
        let overhead = self.data_loading_s + self.aggregation_s + self.startup_s + self.cache_s;
        let total = self.total();
        if total <= 0.0 {
            0.0
        } else {
            overhead / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> TrainRow {
        TrainRow {
            round: 2,
            wall_time_s: 10.5,
            round_duration_s: 5.25,
            learner_invocations: 12,
            episodes: 34,
            reward: 123.4,
            mean_staleness: 1.5,
            cost_usd: 0.01,
            learner_cost_usd: 0.007,
            actor_cost_usd: 0.003,
            policy_updates: 9,
            policy_kl: 0.002,
        }
    }

    #[test]
    fn csv_roundtrips_field_count() {
        let line = row().to_csv();
        assert_eq!(
            line.split(',').count(),
            TrainRow::CSV_HEADER.split(',').count()
        );
        let csv = rows_to_csv(&[row(), row()]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("round,"));
    }

    #[test]
    fn timers_accumulate_and_report() {
        let t = Timers::default();
        Timers::add(&t.gradient_us, Duration::from_millis(1500));
        Timers::add(&t.gradient_us, Duration::from_millis(500));
        Timers::add(&t.startup_us, Duration::from_millis(100));
        let r = t.report();
        assert!((r.gradient_s - 2.0).abs() < 1e-6);
        assert!((r.startup_s - 0.1).abs() < 1e-6);
        assert!((r.total() - 2.1).abs() < 1e-6);
    }

    #[test]
    fn overhead_fraction_excludes_sampling_and_gradients() {
        let r = TimerReport {
            actor_sampling_s: 8.0,
            gradient_s: 1.5,
            data_loading_s: 0.2,
            aggregation_s: 0.2,
            startup_s: 0.05,
            cache_s: 0.05,
        };
        assert!((r.overhead_fraction() - 0.5 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timers_zero_fraction() {
        assert_eq!(TimerReport::default().overhead_fraction(), 0.0);
    }

    #[test]
    fn component_spans_feed_the_report() {
        let t = Timers::default();
        {
            let _g = t.span(Component::Aggregation);
            std::thread::sleep(Duration::from_millis(2));
        }
        t.record(Component::Cache, Duration::from_millis(3));
        let r = t.report();
        assert!(r.aggregation_s > 0.0, "{r:?}");
        assert!((r.cache_s - 0.003).abs() < 1e-9, "{r:?}");
        // The same samples land in the global latency histograms.
        assert!(
            stellaris_telemetry::global()
                .histogram("stellaris_core_latency_us_cache")
                .count()
                >= 1
        );
    }

    #[test]
    fn saturating_duration_cast_never_truncates() {
        let t = Timers::default();
        // > u64::MAX microseconds: the old `as u64` cast wrapped this to a
        // small number; now it saturates.
        Timers::add(&t.startup_us, Duration::MAX);
        assert_eq!(t.startup_us.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn component_names_are_stable() {
        assert_eq!(Component::ALL.len(), 6);
        for c in Component::ALL {
            assert!(c.span_name().starts_with("core."));
            assert!(c.span_name().ends_with(c.name()));
        }
    }
}
