//! The Parameter Function (workflow Step ③): staleness-aware gradient
//! aggregation and policy updates.
//!
//! Gradients arriving from learner functions are queued; every enqueue
//! re-evaluates the aggregation rule, and admitted batches are folded into
//! the policy as `θ_{c+1} = θ_c - (1/H_c) Σ (α_0/δ^(1/v)) g` via the
//! configured optimizer. The policy clock (`PolicyNet::version`) increments
//! on every update and is the reference for all staleness computations.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use stellaris_nn::{Optimizer, ParamSet, Tensor};
use stellaris_rl::{BlockLayout, BlockUpdate, PolicyDelta, PolicyNet, PolicySnapshot};
use stellaris_telemetry::{Counter, Histogram};

use crate::aggregation::{AggregationRule, GradAccumulator};
use crate::messages::GradientMsg;
use crate::staleness::StalenessSchedule;

/// A capped staleness ledger: keeps the last [`StalenessRing::DEFAULT_CAP`]
/// per-gradient staleness samples plus a monotonic total, so a 10k-learner
/// run records millions of gradients without the ledger growing one `u64`
/// per gradient forever. The full distribution lives in the
/// `stellaris_core_staleness` histogram, which never evicts; the ring keeps
/// the recent raw samples that round summaries and Fig. 3(b)-style PDFs
/// read.
#[derive(Clone, Debug, Default)]
pub struct StalenessRing {
    /// bound: capped at `DEFAULT_CAP` entries — `push` evicts the oldest.
    buf: VecDeque<u64>,
    /// Total samples ever recorded (monotonic, survives eviction).
    recorded: u64,
}

impl StalenessRing {
    /// Retained-sample cap. 64Ki `u64`s is 512 KiB — a fixed ceiling however
    /// long the run — while holding far more than any round summary reads.
    pub const DEFAULT_CAP: usize = 65_536;

    /// An empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one staleness sample, evicting the oldest beyond the cap.
    pub fn push(&mut self, v: u64) {
        if self.buf.len() >= Self::DEFAULT_CAP {
            self.buf.pop_front();
        }
        self.buf.push_back(v);
        self.recorded += 1;
    }

    /// Total samples ever recorded (monotonic; `>= len()`).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Retained samples (`<= DEFAULT_CAP`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<u64> {
        self.buf.back().copied()
    }

    /// Iterates retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &u64> {
        self.buf.iter()
    }

    /// Copies the retained samples out, oldest first.
    pub fn to_vec(&self) -> Vec<u64> {
        self.buf.iter().copied().collect()
    }

    /// Records every sample from an iterator (sync-mode merge of a wave
    /// server's ledger into the job's).
    pub fn extend(&mut self, it: impl IntoIterator<Item = u64>) {
        for v in it {
            self.push(v);
        }
    }

    /// Mean over the last `n` retained samples (0.0 when empty).
    pub fn tail_mean(&self, n: usize) -> f64 {
        let start = self.buf.len().saturating_sub(n);
        let len = self.buf.len() - start;
        if len == 0 {
            return 0.0;
        }
        // lint:allow(L4): staleness sums and lengths stay far below 2^53, exact in f64
        self.buf.iter().skip(start).sum::<u64>() as f64 / len as f64
    }
}

/// The aggregating parameter server (one per training job).
pub struct ParameterServer {
    /// The canonical policy.
    pub policy: PolicyNet,
    optimizer: Box<dyn Optimizer>,
    rule: AggregationRule,
    schedule: Option<StalenessSchedule>,
    pending: Vec<GradientMsg>,
    /// Reused across every update so aggregation allocates nothing at
    /// steady state.
    accumulator: GradAccumulator,
    /// Staleness of recently aggregated gradients, in admission order (the
    /// data behind the paper's Fig. 3(b) PDFs), capped — see
    /// [`StalenessRing`] for the bound policy.
    pub staleness_log: StalenessRing,
    /// Number of policy updates performed.
    pub updates: u64,
    /// Number of gradients folded in.
    pub grads_aggregated: u64,
    /// Global staleness histogram: one sample per aggregated gradient, so
    /// its count always equals the sum of `grads_aggregated` across runs.
    staleness_hist: Arc<Histogram>,
    gate_admitted: Arc<Counter>,
    gate_delayed: Arc<Counter>,
}

impl ParameterServer {
    /// Creates a server around an initial policy.
    pub fn new(policy: PolicyNet, optimizer: Box<dyn Optimizer>, rule: AggregationRule) -> Self {
        let schedule = rule.make_schedule();
        let reg = stellaris_telemetry::global();
        let shapes = policy.param_shapes();
        Self {
            policy,
            optimizer,
            rule,
            schedule,
            pending: Vec::new(),
            accumulator: GradAccumulator::new(&shapes),
            staleness_log: StalenessRing::new(),
            updates: 0,
            grads_aggregated: 0,
            staleness_hist: reg.histogram("stellaris_core_staleness"),
            gate_admitted: reg.counter("stellaris_core_gate_admitted_total"),
            gate_delayed: reg.counter("stellaris_core_gate_delayed_total"),
        }
    }

    /// Current policy clock.
    pub fn clock(&self) -> u64 {
        self.policy.version
    }

    /// Gradients waiting in the delay queue.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Offers a gradient; returns how many policy updates it triggered
    /// (0 when the rule delays aggregation).
    pub fn offer(&mut self, msg: GradientMsg) -> usize {
        debug_assert!(
            msg.base_version <= self.clock(),
            "gradient from the future: base {} > clock {} (staleness would go negative)",
            msg.base_version,
            self.clock()
        );
        let staleness = msg.staleness(self.clock());
        if let Some(s) = &mut self.schedule {
            s.observe(staleness);
        }
        self.pending.push(msg);
        let mut applied = 0;
        while self.try_flush() {
            applied += 1;
        }
        applied
    }

    /// One aggregation attempt; true if an update happened.
    fn try_flush(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let clock = self.clock();
        let staleness: Vec<u64> = self.pending.iter().map(|m| m.staleness(clock)).collect();
        if !self.rule.admits(&staleness, self.schedule.as_ref()) {
            self.gate_delayed.inc();
            return false;
        }
        self.gate_admitted.inc();
        // Per-gradient aggregation rules consume one message per update;
        // batched rules fold the whole queue.
        let take = match self.rule {
            AggregationRule::PureAsync | AggregationRule::Ssp { .. } => 1,
            _ => self.pending.len(),
        };
        let batch: Vec<GradientMsg> = self.pending.drain(..take).collect();
        self.apply(&batch);
        true
    }

    fn apply(&mut self, batch: &[GradientMsg]) {
        debug_assert!(!batch.is_empty());
        let clock = self.clock();
        self.accumulator.reset();
        // lint:allow(L4): batch sizes are far below 2^24, exact in f32
        let h = batch.len() as f32;
        for msg in batch {
            assert_eq!(
                msg.grads.len(),
                self.accumulator.len(),
                "gradient layout mismatch from learner {}",
                msg.learner_id
            );
            let delta = msg.staleness(clock);
            self.staleness_log.push(delta);
            self.staleness_hist.record(delta);
            let w = self.rule.weight(delta) / h;
            self.accumulator.accumulate(&msg.grads, w);
        }
        // The optimizer writes straight into the live policy tensors; no
        // flatten/unflatten round-trip, no parameter copies.
        let mut params = self.policy.params_mut();
        self.optimizer
            .step_refs(&mut params, self.accumulator.grads());
        self.policy.version += 1;
        self.updates += 1;
        self.grads_aggregated += batch.len() as u64;
    }

    /// Advances the staleness-threshold schedule one training round.
    pub fn advance_round(&mut self) {
        if let Some(s) = &mut self.schedule {
            s.advance_round();
        }
    }

    /// Current staleness threshold `β_k` (None while calibrating or for
    /// rules without one).
    pub fn beta(&self) -> Option<f64> {
        self.schedule.as_ref().and_then(StalenessSchedule::beta)
    }

    /// Snapshot of the canonical policy for actors/learners to pull.
    pub fn snapshot(&self) -> PolicySnapshot {
        self.policy.snapshot()
    }

    /// Mean staleness over the last `n` aggregated gradients.
    pub fn mean_recent_staleness(&self, n: usize) -> f64 {
        self.staleness_log.tail_mean(n)
    }
}

/// How parameter blocks (one block per parameter tensor, `ParamSet::params`
/// order) partition across shards: greedy balance by element count,
/// deterministic, each shard's block list ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    /// Global block indices owned by each shard, ascending within a shard.
    blocks: Vec<Vec<usize>>,
}

impl ShardLayout {
    /// Partitions `sizes.len()` blocks across `n_shards` (clamped to
    /// `1..=sizes.len()`): blocks are placed largest-first onto the
    /// currently lightest shard (ties by shard index), which keeps per-shard
    /// element counts within one block of balanced. With one shard the
    /// layout is the identity — every block, in order.
    pub fn partition(sizes: &[usize], n_shards: usize) -> Self {
        let n = n_shards.clamp(1, sizes.len().max(1));
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        // Stable sort: equal sizes keep ascending block order, so the
        // layout is a pure function of (sizes, n_shards).
        order.sort_by_key(|&b| std::cmp::Reverse(sizes[b]));
        let mut blocks = vec![Vec::new(); n];
        let mut load = vec![0usize; n];
        for b in order {
            let lightest = (0..n).min_by_key(|&s| (load[s], s)).unwrap_or(0);
            blocks[lightest].push(b);
            load[lightest] += sizes[b];
        }
        for list in &mut blocks {
            list.sort_unstable();
        }
        Self { blocks }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.blocks.len()
    }

    /// The global block indices shard `s` owns, ascending.
    pub fn blocks(&self, s: usize) -> &[usize] {
        &self.blocks[s]
    }
}

/// One shard's independent aggregation state: its parameter tensors, its
/// optimizer-state slice, its staleness-schedule view and its pending queue.
struct ParamShard {
    /// Global block indices this shard owns (ascending).
    blocks: Vec<usize>,
    /// The owned parameter tensors, one per block.
    params: Vec<Tensor>,
    optimizer: Box<dyn Optimizer>,
    rule: AggregationRule,
    schedule: Option<StalenessSchedule>,
    pending: Vec<Arc<GradientMsg>>,
    accumulator: GradAccumulator,
    staleness_log: StalenessRing,
    updates: u64,
    grads_aggregated: u64,
    /// Per-shard staleness histogram (`stellaris_core_staleness_shard<i>`).
    hist: Arc<Histogram>,
}

/// The sharded parameter plane (DESIGN.md §16): the parameter function split
/// into `N` shards keyed by parameter block, each aggregating independently
/// — own optimizer-state slice, own staleness-schedule view, own pending
/// queue, own per-shard staleness histogram — with a cheap version-vector
/// commit. A commit bumps one global `commit_seq` (the policy clock) and
/// stamps the shard's blocks with that sequence number, which is exactly
/// the state delta pulls need: a learner at version `v` pulls the blocks
/// stamped after `v` ([`Self::delta_since`]) and nothing else.
///
/// **Single-shard configuration is bit-for-bit today's
/// [`ParameterServer`]**: one shard owns every block in order, staleness is
/// measured against the same global clock, gradients fold in the same order
/// with the same weights into the same optimizer — the Eq. 2/3/4 semantics
/// and the global policy clock are unchanged (regression-tested below).
/// With `N > 1` the shards commit independently, so the clock advances `N`
/// times per full gradient sweep; staleness thresholds self-normalize
/// because the schedule calibrates `δ_max` from observed values (Eq. 3).
pub struct ShardedParameterServer {
    /// Flat-vector geometry (shared with delta pulls).
    layout: BlockLayout,
    shard_layout: ShardLayout,
    shards: Vec<Mutex<ParamShard>>,
    /// The global policy clock: one tick per shard commit. With one shard
    /// this equals `PolicyNet::version` under the unsharded server.
    commit_seq: AtomicU64,
    /// Per-block commit stamp: `block_versions[b]` is the `commit_seq`
    /// value of the commit that last wrote block `b`.
    block_versions: Vec<AtomicU64>,
    /// Template for reassembling a `PolicyNet` from the shard state.
    template: Mutex<PolicyNet>,
    /// `stellaris_core_grads_aggregated_total`: one increment per
    /// (gradient, shard) fold, so the per-shard staleness histogram counts
    /// sum to it (checked by `validate_trace`).
    grads_counter: Arc<Counter>,
    global_hist: Arc<Histogram>,
    gate_admitted: Arc<Counter>,
    gate_delayed: Arc<Counter>,
}

impl ShardedParameterServer {
    /// Creates a sharded server around an initial policy. `make_optimizer`
    /// builds one optimizer per shard (each owns only its slice of the
    /// optimizer state); `n_shards` is clamped to the number of parameter
    /// tensors.
    pub fn new(
        policy: PolicyNet,
        rule: AggregationRule,
        n_shards: usize,
        mut make_optimizer: impl FnMut() -> Box<dyn Optimizer>,
    ) -> Self {
        let shapes = policy.param_shapes();
        let layout = BlockLayout::from_shapes(&shapes);
        let sizes: Vec<usize> = (0..layout.n_blocks()).map(|b| layout.size(b)).collect();
        let shard_layout = ShardLayout::partition(&sizes, n_shards);
        let reg = stellaris_telemetry::global();
        let all_params: Vec<Tensor> = policy.params().into_iter().cloned().collect();
        let shards = (0..shard_layout.n_shards())
            .map(|s| {
                let blocks = shard_layout.blocks(s).to_vec();
                let params: Vec<Tensor> = blocks.iter().map(|&b| all_params[b].clone()).collect();
                let shard_shapes: Vec<Vec<usize>> =
                    blocks.iter().map(|&b| shapes[b].clone()).collect();
                Mutex::new(ParamShard {
                    blocks,
                    params,
                    optimizer: make_optimizer(),
                    rule: rule.clone(),
                    schedule: rule.make_schedule(),
                    pending: Vec::new(),
                    accumulator: GradAccumulator::new(&shard_shapes),
                    staleness_log: StalenessRing::new(),
                    updates: 0,
                    grads_aggregated: 0,
                    hist: reg.histogram(&format!("stellaris_core_staleness_shard{s}")),
                })
            })
            .collect();
        let n_blocks = layout.n_blocks();
        Self {
            layout,
            shard_layout,
            shards,
            commit_seq: AtomicU64::new(policy.version),
            block_versions: (0..n_blocks)
                .map(|_| AtomicU64::new(policy.version))
                .collect(),
            template: Mutex::new(policy),
            grads_counter: reg.counter("stellaris_core_grads_aggregated_total"),
            global_hist: reg.histogram("stellaris_core_staleness"),
            gate_admitted: reg.counter("stellaris_core_gate_admitted_total"),
            gate_delayed: reg.counter("stellaris_core_gate_delayed_total"),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The flat-vector block geometry.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// How blocks partition across shards.
    pub fn shard_layout(&self) -> &ShardLayout {
        &self.shard_layout
    }

    /// Current global policy clock (one tick per shard commit).
    pub fn clock(&self) -> u64 {
        self.commit_seq.load(Ordering::Acquire)
    }

    /// Per-shard update counts — the version vector. Sums to
    /// `clock() - initial version`.
    pub fn version_vector(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lock().updates).collect()
    }

    /// Total policy updates (shard commits).
    pub fn updates(&self) -> u64 {
        self.version_vector().iter().sum()
    }

    /// Total (gradient, shard) folds. With one shard this equals the
    /// unsharded server's `grads_aggregated`.
    pub fn grads_aggregated(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().grads_aggregated).sum()
    }

    /// Gradients waiting in shard 0's delay queue (all shards see the same
    /// offers, so with aligned rules the counts agree; shard 0 is the
    /// canonical view).
    pub fn pending(&self) -> usize {
        self.shards[0].lock().pending.len()
    }

    /// Offers a gradient to every shard in order; returns how many shard
    /// commits it triggered. The sequential fan-out is deterministic: with
    /// one shard this is exactly [`ParameterServer::offer`]. Concurrent
    /// callers may instead drive [`Self::offer_to_shard`] per shard from
    /// separate threads — shards lock independently.
    pub fn offer(&self, msg: GradientMsg) -> usize {
        let msg = Arc::new(msg);
        (0..self.shards.len())
            .map(|s| self.offer_to_shard(s, msg.clone()))
            .sum()
    }

    /// Offers a gradient to one shard; returns how many commits it
    /// triggered on that shard.
    pub fn offer_to_shard(&self, s: usize, msg: Arc<GradientMsg>) -> usize {
        let mut sh = self.shards[s].lock();
        debug_assert!(
            msg.base_version <= self.clock(),
            "gradient from the future: base {} > clock {} (staleness would go negative)",
            msg.base_version,
            self.clock()
        );
        let staleness = msg.staleness(self.clock());
        if let Some(sched) = &mut sh.schedule {
            // lint:allow(A2): StalenessSchedule::observe mutates plain fields; the flagged lock edges belong to identically-named recorder/profiler methods
            sched.observe(staleness);
        }
        sh.pending.push(msg);
        let mut applied = 0;
        // lint:allow(A2): shard_try_flush folds into this locked shard only; the flagged Cache lock rides a name collision on `reset`
        while self.shard_try_flush(&mut sh) {
            applied += 1;
        }
        applied
    }

    /// One aggregation attempt on a locked shard; true if it committed.
    fn shard_try_flush(&self, sh: &mut ParamShard) -> bool {
        if sh.pending.is_empty() {
            return false;
        }
        let clock = self.clock();
        let staleness: Vec<u64> = sh.pending.iter().map(|m| m.staleness(clock)).collect();
        if !sh.rule.admits(&staleness, sh.schedule.as_ref()) {
            self.gate_delayed.inc();
            return false;
        }
        self.gate_admitted.inc();
        // Per-gradient aggregation rules consume one message per update;
        // batched rules fold the whole queue (same split as the unsharded
        // server).
        let take = match sh.rule {
            AggregationRule::PureAsync | AggregationRule::Ssp { .. } => 1,
            _ => sh.pending.len(),
        };
        let batch: Vec<Arc<GradientMsg>> = sh.pending.drain(..take).collect();
        self.shard_apply(sh, &batch);
        true
    }

    /// Folds a batch into one shard and commits: optimizer step over the
    /// shard's slice, then the version-vector commit — one `commit_seq`
    /// tick stamped onto the shard's blocks.
    fn shard_apply(&self, sh: &mut ParamShard, batch: &[Arc<GradientMsg>]) {
        debug_assert!(!batch.is_empty());
        let clock = self.clock();
        sh.accumulator.reset();
        // lint:allow(L4): batch sizes are far below 2^24, exact in f32
        let h = batch.len() as f32;
        for msg in batch {
            assert_eq!(
                msg.grads.len(),
                self.layout.n_blocks(),
                "gradient layout mismatch from learner {}",
                msg.learner_id
            );
            let delta = msg.staleness(clock);
            sh.staleness_log.push(delta);
            sh.hist.record(delta);
            self.global_hist.record(delta);
            let w = sh.rule.weight(delta) / h;
            let blocks = std::mem::take(&mut sh.blocks);
            sh.accumulator.accumulate_indexed(&msg.grads, &blocks, w);
            sh.blocks = blocks;
        }
        let mut params: Vec<&mut Tensor> = sh.params.iter_mut().collect();
        sh.optimizer.step_refs(&mut params, sh.accumulator.grads());
        // Version-vector commit: one global tick, stamped per block. The
        // shard lock is held, so a concurrent delta pull sees either the
        // whole commit or none of it for this shard's blocks.
        let seq = self.commit_seq.fetch_add(1, Ordering::AcqRel) + 1;
        for &b in &sh.blocks {
            self.block_versions[b].store(seq, Ordering::Release);
        }
        sh.updates += 1;
        sh.grads_aggregated += batch.len() as u64;
        self.grads_counter.add(batch.len() as u64);
    }

    /// Advances every shard's staleness-threshold schedule one round.
    pub fn advance_round(&self) {
        for shard in &self.shards {
            if let Some(s) = &mut shard.lock().schedule {
                // lint:allow(A1): StalenessSchedule::advance_round shares this method's name but mutates plain fields — no recursion, no second acquisition
                s.advance_round(); // lint:allow(A2): same name collision; the schedule takes no locks
            }
        }
    }

    /// Current staleness threshold `β_k` of shard 0 (the canonical view;
    /// all shards observe the same offers).
    pub fn beta(&self) -> Option<f64> {
        self.shards[0]
            .lock()
            .schedule
            .as_ref()
            .and_then(StalenessSchedule::beta)
    }

    /// Mean staleness over shard 0's last `n` aggregated gradients.
    pub fn mean_recent_staleness(&self, n: usize) -> f64 {
        self.shards[0].lock().staleness_log.tail_mean(n)
    }

    /// Shard 0's staleness ledger — one entry per admitted gradient
    /// message, the same series the unsharded server logs.
    pub fn staleness_log(&self) -> StalenessRing {
        self.shards[0].lock().staleness_log.clone()
    }

    /// Snapshot of the full policy: blocks reassembled in flat order,
    /// stamped with the global clock.
    pub fn snapshot(&self) -> PolicySnapshot {
        let mut flat = vec![0.0f32; self.layout.total()];
        for shard in &self.shards {
            let sh = shard.lock();
            for (local, &b) in sh.blocks.iter().enumerate() {
                let off = self.layout.offset(b);
                flat[off..off + self.layout.size(b)].copy_from_slice(sh.params[local].data());
            }
        }
        PolicySnapshot {
            version: self.clock(),
            flat,
        }
    }

    /// The delta a learner at version `v` needs: every block stamped after
    /// `v`, shard-consistently copied. Falls back to a full refresh when
    /// `v` is ahead of the clock (unknown lineage). The returned `to` is
    /// the highest stamp shipped, so an immediate re-pull is empty.
    pub fn delta_since(&self, v: u64) -> PolicyDelta {
        let mut to = self.clock();
        let full = v > to;
        let mut blocks: Vec<BlockUpdate> = Vec::new();
        for shard in &self.shards {
            let sh = shard.lock();
            for (local, &b) in sh.blocks.iter().enumerate() {
                let stamp = self.block_versions[b].load(Ordering::Acquire);
                if full || stamp > v {
                    to = to.max(stamp);
                    blocks.push(BlockUpdate {
                        index: b as u32,
                        data: sh.params[local].data().to_vec(),
                    });
                }
            }
        }
        blocks.sort_by_key(|b| b.index);
        PolicyDelta {
            from: v,
            to,
            full,
            blocks,
        }
    }

    /// Reassembles the canonical `PolicyNet` (template weights replaced by
    /// the shard state, version set to the global clock).
    pub fn policy(&self) -> PolicyNet {
        let snap = self.snapshot();
        let mut policy = self.template.lock().clone();
        policy.load_snapshot(&snap);
        policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_envs::ActionSpace;
    use stellaris_nn::{OptimizerKind, Sgd, Tensor};
    use stellaris_rl::PolicySpec;

    fn tiny_policy(seed: u64) -> PolicyNet {
        PolicyNet::new(
            PolicySpec {
                obs_shape: vec![4],
                action_space: ActionSpace::Continuous { dim: 2, bound: 1.0 },
                hidden: 8,
            },
            seed,
        )
    }

    fn grad_msg(policy: &PolicyNet, learner: usize, base: u64, fill: f32) -> GradientMsg {
        GradientMsg {
            learner_id: learner,
            grads: policy
                .params()
                .iter()
                .map(|p| Tensor::full(p.shape(), fill))
                .collect(),
            base_version: base,
            batch_len: 32,
            is_ratio: 1.0,
            kl: 0.0,
            surrogate: 0.0,
        }
    }

    #[test]
    fn pure_async_applies_immediately() {
        let policy = tiny_policy(0);
        let msg = grad_msg(&policy, 0, 0, 0.1);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::PureAsync,
        );
        assert_eq!(ps.offer(msg), 1);
        assert_eq!(ps.clock(), 1);
        assert_eq!(ps.pending(), 0);
    }

    #[test]
    fn sgd_update_moves_params_by_weighted_gradient() {
        let policy = tiny_policy(0);
        let before = policy.flatten();
        let msg = grad_msg(&policy, 0, 0, 1.0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.5, 0.0)),
            AggregationRule::PureAsync,
        );
        ps.offer(msg);
        let after = ps.policy.flatten();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - 0.5 - a).abs() < 1e-6, "θ' = θ - lr*g: {b} -> {a}");
        }
    }

    #[test]
    fn fullsync_waits_for_group() {
        let policy = tiny_policy(0);
        let m1 = grad_msg(&policy, 0, 0, 1.0);
        let m2 = grad_msg(&policy, 1, 0, 3.0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(1.0, 0.0)),
            AggregationRule::FullSync { n: 2 },
        );
        assert_eq!(ps.offer(m1), 0, "must wait for the group");
        assert_eq!(ps.pending(), 1);
        let before = ps.policy.flatten();
        assert_eq!(ps.offer(m2), 1);
        let after = ps.policy.flatten();
        // Plain average of fills 1 and 3 = 2, lr 1.
        assert!((before[0] - 2.0 - after[0]).abs() < 1e-5);
    }

    #[test]
    fn staleness_weights_scale_contributions() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(1.0, 0.0)),
            AggregationRule::StalenessAware { d: 1.0, v: 1 },
        );
        // Advance the clock twice with fresh gradients (round 0: unbounded).
        let m = grad_msg(&ps.policy, 0, 0, 0.0);
        ps.offer(m);
        let m = grad_msg(&ps.policy, 0, 1, 0.0);
        ps.offer(m);
        assert_eq!(ps.clock(), 2);
        let before = ps.policy.flatten();
        // A gradient based on version 0 now has staleness 2 -> weight 1/2.
        let stale = grad_msg(&ps.policy, 1, 0, 1.0);
        ps.offer(stale);
        let after = ps.policy.flatten();
        assert!(
            (before[0] - 0.5 - after[0]).abs() < 1e-5,
            "weight 1/δ = 0.5"
        );
        assert_eq!(ps.staleness_log.last(), Some(2));
    }

    #[test]
    fn staleness_threshold_delays_aggregation() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::StalenessAware { d: 0.25, v: 3 },
        );
        // Calibration round: drive the clock to 4 and record δ_max = 4.
        for i in 0..4 {
            let m = grad_msg(&ps.policy, 0, i, 0.01);
            ps.offer(m);
        }
        let stale = grad_msg(&ps.policy, 1, 0, 0.01);
        ps.offer(stale); // staleness 4 observed in round 0 -> δ_max = 4
        ps.advance_round(); // β = 4 * 0.25 = 1
        assert_eq!(ps.beta(), Some(1.0));
        let clock = ps.clock();
        // A gradient 3 versions stale: average 3 > β=1 -> delayed.
        let old = grad_msg(&ps.policy, 2, clock - 3, 0.01);
        assert_eq!(ps.offer(old), 0);
        assert_eq!(ps.pending(), 1);
        // Two fresh gradients pull the average to (3+0+0)/3 = 1 <= β.
        let f1 = grad_msg(&ps.policy, 3, clock, 0.01);
        assert_eq!(ps.offer(f1), 0, "avg (3+0)/2 = 1.5 > 1 still delayed");
        let f2 = grad_msg(&ps.policy, 4, clock, 0.01);
        assert_eq!(ps.offer(f2), 1, "avg (3+0+0)/3 = 1 <= β admits");
        assert_eq!(ps.pending(), 0);
        assert_eq!(ps.grads_aggregated, 8);
    }

    #[test]
    fn softsync_batches_every_c() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::Softsync { c: 3 },
        );
        for i in 0..2 {
            let m = grad_msg(&ps.policy, i, 0, 0.1);
            assert_eq!(ps.offer(m), 0);
        }
        let m = grad_msg(&ps.policy, 2, 0, 0.1);
        assert_eq!(ps.offer(m), 1);
        assert_eq!(ps.updates, 1);
        assert_eq!(ps.grads_aggregated, 3);
    }

    #[test]
    fn optimizer_kind_integration() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            OptimizerKind::Adam.build(0.01),
            AggregationRule::PureAsync,
        );
        for i in 0..5 {
            let m = grad_msg(&ps.policy, 0, i, 0.3);
            ps.offer(m);
        }
        assert_eq!(ps.updates, 5);
        assert!(ps.policy.flatten().iter().all(|x| x.is_finite()));
        assert_eq!(ps.mean_recent_staleness(10), 0.0);
    }

    #[test]
    fn staleness_ring_caps_but_counts_everything() {
        let mut ring = StalenessRing::new();
        for i in 0..(StalenessRing::DEFAULT_CAP as u64 + 10) {
            ring.push(i);
        }
        assert_eq!(ring.len(), StalenessRing::DEFAULT_CAP);
        assert_eq!(ring.recorded(), StalenessRing::DEFAULT_CAP as u64 + 10);
        assert_eq!(ring.last(), Some(StalenessRing::DEFAULT_CAP as u64 + 9));
        // Oldest 10 were evicted; the front is sample #10.
        assert_eq!(ring.to_vec()[0], 10);
        assert_eq!(ring.tail_mean(2), StalenessRing::DEFAULT_CAP as f64 + 8.5);
    }

    #[test]
    fn shard_layout_deterministic_and_covering() {
        let sizes = vec![100, 7, 7, 50, 1, 200, 30];
        let a = ShardLayout::partition(&sizes, 3);
        let b = ShardLayout::partition(&sizes, 3);
        assert_eq!(a, b, "pure function of (sizes, n_shards)");
        assert_eq!(a.n_shards(), 3);
        let mut all: Vec<usize> = (0..3).flat_map(|s| a.blocks(s).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..sizes.len()).collect::<Vec<_>>(), "exact cover");
        // Clamps: more shards than blocks, and a single shard is identity.
        assert_eq!(ShardLayout::partition(&sizes, 99).n_shards(), sizes.len());
        let one = ShardLayout::partition(&sizes, 1);
        assert_eq!(one.blocks(0), (0..sizes.len()).collect::<Vec<_>>());
    }

    /// The acceptance-criteria regression: the single-shard configuration
    /// must be bit-for-bit identical to the unsharded `ParameterServer`
    /// on the same seed and offer sequence.
    #[test]
    fn single_shard_bitwise_matches_parameter_server() {
        for rule in [
            AggregationRule::PureAsync,
            AggregationRule::StalenessAware { d: 1.0, v: 1 },
            AggregationRule::Softsync { c: 3 },
            AggregationRule::FullSync { n: 2 },
        ] {
            let mut flat_srv = ParameterServer::new(
                tiny_policy(7),
                OptimizerKind::Adam.build(0.01),
                rule.clone(),
            );
            let sharded = ShardedParameterServer::new(tiny_policy(7), rule.clone(), 1, || {
                OptimizerKind::Adam.build(0.01)
            });
            for i in 0..12u64 {
                // Same message stream: base version trails the flat
                // server's clock (both clocks advance identically).
                let base = flat_srv.clock().saturating_sub(i % 3);
                // lint:allow(L4): tiny integer fills are exact in f32
                let msg = grad_msg(
                    &flat_srv.policy,
                    i as usize % 4,
                    base,
                    0.01 * (i + 1) as f32,
                );
                let a = flat_srv.offer(msg.clone());
                let b = sharded.offer(msg);
                assert_eq!(a, b, "same commits under {rule:?} at step {i}");
                assert_eq!(flat_srv.clock(), sharded.clock());
            }
            let flat_snap = flat_srv.snapshot();
            let shard_snap = sharded.snapshot();
            assert_eq!(flat_snap.version, shard_snap.version);
            assert_eq!(flat_snap.flat.len(), shard_snap.flat.len(), "same geometry");
            for (i, (x, y)) in flat_snap.flat.iter().zip(&shard_snap.flat).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "param {i} diverged under {rule:?}"
                );
            }
            assert_eq!(flat_srv.updates, sharded.updates());
            assert_eq!(flat_srv.grads_aggregated, sharded.grads_aggregated());
            assert_eq!(
                flat_srv.staleness_log.to_vec(),
                sharded.staleness_log().to_vec()
            );
            // The reassembled policy carries the same bits and clock.
            let policy = sharded.policy();
            assert_eq!(policy.version, flat_srv.policy.version);
            for (x, y) in flat_srv.policy.flatten().iter().zip(policy.flatten()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn multi_shard_commit_advances_version_vector() {
        let policy = tiny_policy(3);
        let sharded =
            ShardedParameterServer::new(policy.clone(), AggregationRule::PureAsync, 4, || {
                Box::new(Sgd::new(0.1, 0.0))
            });
        assert_eq!(sharded.n_shards(), 4.min(policy.param_shapes().len()));
        let n = sharded.n_shards();
        let msg = grad_msg(&policy, 0, 0, 0.5);
        // Full fan-out: every shard commits once, the clock ticks n times.
        assert_eq!(sharded.offer(msg), n);
        assert_eq!(sharded.clock(), n as u64);
        assert_eq!(sharded.version_vector(), vec![1u64; n]);
        assert_eq!(sharded.updates(), n as u64);
        // Every parameter moved: the fan-out covered all blocks.
        let before = policy.flatten();
        let after = sharded.snapshot().flat;
        for (b, a) in before.iter().zip(&after) {
            assert!((b - 0.1 * 0.5 - a).abs() < 1e-6, "θ' = θ - lr*g per block");
        }
    }

    #[test]
    fn delta_since_ships_only_committed_shard() {
        let policy = tiny_policy(9);
        let sharded =
            ShardedParameterServer::new(policy.clone(), AggregationRule::PureAsync, 4, || {
                Box::new(Sgd::new(0.1, 0.0))
            });
        let n = sharded.n_shards();
        assert!(n > 1, "test needs real sharding");
        // A learner in sync at the current clock pulls an empty delta.
        let empty = sharded.delta_since(sharded.clock());
        assert!(empty.is_empty() && !empty.full);
        // Commit on shard 0 only: the delta carries exactly its blocks.
        let msg = Arc::new(grad_msg(&policy, 0, 0, 1.0));
        assert_eq!(sharded.offer_to_shard(0, msg), 1);
        let delta = sharded.delta_since(0);
        assert!(!delta.full);
        assert_eq!(delta.to, sharded.clock());
        let got: Vec<usize> = delta.blocks.iter().map(|b| b.index as usize).collect();
        assert_eq!(got, sharded.shard_layout().blocks(0));
        // A learner claiming a future version gets the full refresh.
        let future = sharded.delta_since(sharded.clock() + 5);
        assert!(future.full);
        assert_eq!(future.blocks.len(), sharded.layout().n_blocks());
        // Applying the partial delta to the stale snapshot reproduces the
        // current full snapshot exactly.
        let mut snap = PolicySnapshot {
            version: 0,
            flat: policy.flatten(),
        };
        stellaris_rl::apply_to_snapshot(&delta, &mut snap, sharded.layout()).unwrap();
        let now = sharded.snapshot();
        assert_eq!(snap.version, now.version);
        for (x, y) in snap.flat.iter().zip(&now.flat) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "gradient layout mismatch")]
    fn layout_mismatch_panics() {
        let policy = tiny_policy(0);
        let mut bad = grad_msg(&policy, 0, 0, 0.1);
        bad.grads.pop();
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::PureAsync,
        );
        ps.offer(bad);
    }
}
