//! The Parameter Function (workflow Step ③): staleness-aware gradient
//! aggregation and policy updates.
//!
//! Gradients arriving from learner functions are queued; every enqueue
//! re-evaluates the aggregation rule, and admitted batches are folded into
//! the policy as `θ_{c+1} = θ_c - (1/H_c) Σ (α_0/δ^(1/v)) g` via the
//! configured optimizer. The policy clock (`PolicyNet::version`) increments
//! on every update and is the reference for all staleness computations.

use std::sync::Arc;

use stellaris_nn::{Optimizer, ParamSet};
use stellaris_rl::{PolicyNet, PolicySnapshot};
use stellaris_telemetry::{Counter, Histogram};

use crate::aggregation::{AggregationRule, GradAccumulator};
use crate::messages::GradientMsg;
use crate::staleness::StalenessSchedule;

/// The aggregating parameter server (one per training job).
pub struct ParameterServer {
    /// The canonical policy.
    pub policy: PolicyNet,
    optimizer: Box<dyn Optimizer>,
    rule: AggregationRule,
    schedule: Option<StalenessSchedule>,
    pending: Vec<GradientMsg>,
    /// Reused across every update so aggregation allocates nothing at
    /// steady state.
    accumulator: GradAccumulator,
    /// Staleness of every aggregated gradient, in admission order
    /// (the data behind the paper's Fig. 3(b) PDFs).
    pub staleness_log: Vec<u64>,
    /// Number of policy updates performed.
    pub updates: u64,
    /// Number of gradients folded in.
    pub grads_aggregated: u64,
    /// Global staleness histogram: one sample per aggregated gradient, so
    /// its count always equals the sum of `grads_aggregated` across runs.
    staleness_hist: Arc<Histogram>,
    gate_admitted: Arc<Counter>,
    gate_delayed: Arc<Counter>,
}

impl ParameterServer {
    /// Creates a server around an initial policy.
    pub fn new(policy: PolicyNet, optimizer: Box<dyn Optimizer>, rule: AggregationRule) -> Self {
        let schedule = rule.make_schedule();
        let reg = stellaris_telemetry::global();
        let shapes = policy.param_shapes();
        Self {
            policy,
            optimizer,
            rule,
            schedule,
            pending: Vec::new(),
            accumulator: GradAccumulator::new(&shapes),
            staleness_log: Vec::new(),
            updates: 0,
            grads_aggregated: 0,
            staleness_hist: reg.histogram("stellaris_core_staleness"),
            gate_admitted: reg.counter("stellaris_core_gate_admitted_total"),
            gate_delayed: reg.counter("stellaris_core_gate_delayed_total"),
        }
    }

    /// Current policy clock.
    pub fn clock(&self) -> u64 {
        self.policy.version
    }

    /// Gradients waiting in the delay queue.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Offers a gradient; returns how many policy updates it triggered
    /// (0 when the rule delays aggregation).
    pub fn offer(&mut self, msg: GradientMsg) -> usize {
        debug_assert!(
            msg.base_version <= self.clock(),
            "gradient from the future: base {} > clock {} (staleness would go negative)",
            msg.base_version,
            self.clock()
        );
        let staleness = msg.staleness(self.clock());
        if let Some(s) = &mut self.schedule {
            s.observe(staleness);
        }
        self.pending.push(msg);
        let mut applied = 0;
        while self.try_flush() {
            applied += 1;
        }
        applied
    }

    /// One aggregation attempt; true if an update happened.
    fn try_flush(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let clock = self.clock();
        let staleness: Vec<u64> = self.pending.iter().map(|m| m.staleness(clock)).collect();
        if !self.rule.admits(&staleness, self.schedule.as_ref()) {
            self.gate_delayed.inc();
            return false;
        }
        self.gate_admitted.inc();
        // Per-gradient aggregation rules consume one message per update;
        // batched rules fold the whole queue.
        let take = match self.rule {
            AggregationRule::PureAsync | AggregationRule::Ssp { .. } => 1,
            _ => self.pending.len(),
        };
        let batch: Vec<GradientMsg> = self.pending.drain(..take).collect();
        self.apply(&batch);
        true
    }

    fn apply(&mut self, batch: &[GradientMsg]) {
        debug_assert!(!batch.is_empty());
        let clock = self.clock();
        self.accumulator.reset();
        // lint:allow(L4): batch sizes are far below 2^24, exact in f32
        let h = batch.len() as f32;
        for msg in batch {
            assert_eq!(
                msg.grads.len(),
                self.accumulator.len(),
                "gradient layout mismatch from learner {}",
                msg.learner_id
            );
            let delta = msg.staleness(clock);
            self.staleness_log.push(delta);
            self.staleness_hist.record(delta);
            let w = self.rule.weight(delta) / h;
            self.accumulator.accumulate(&msg.grads, w);
        }
        // The optimizer writes straight into the live policy tensors; no
        // flatten/unflatten round-trip, no parameter copies.
        let mut params = self.policy.params_mut();
        self.optimizer
            .step_refs(&mut params, self.accumulator.grads());
        self.policy.version += 1;
        self.updates += 1;
        self.grads_aggregated += batch.len() as u64;
    }

    /// Advances the staleness-threshold schedule one training round.
    pub fn advance_round(&mut self) {
        if let Some(s) = &mut self.schedule {
            s.advance_round();
        }
    }

    /// Current staleness threshold `β_k` (None while calibrating or for
    /// rules without one).
    pub fn beta(&self) -> Option<f64> {
        self.schedule.as_ref().and_then(StalenessSchedule::beta)
    }

    /// Snapshot of the canonical policy for actors/learners to pull.
    pub fn snapshot(&self) -> PolicySnapshot {
        self.policy.snapshot()
    }

    /// Mean staleness over the last `n` aggregated gradients.
    pub fn mean_recent_staleness(&self, n: usize) -> f64 {
        let tail = &self.staleness_log[self.staleness_log.len().saturating_sub(n)..];
        if tail.is_empty() {
            0.0
        } else {
            // lint:allow(L4): staleness sums and lengths stay far below 2^53, exact in f64
            tail.iter().sum::<u64>() as f64 / tail.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_envs::ActionSpace;
    use stellaris_nn::{OptimizerKind, Sgd, Tensor};
    use stellaris_rl::PolicySpec;

    fn tiny_policy(seed: u64) -> PolicyNet {
        PolicyNet::new(
            PolicySpec {
                obs_shape: vec![4],
                action_space: ActionSpace::Continuous { dim: 2, bound: 1.0 },
                hidden: 8,
            },
            seed,
        )
    }

    fn grad_msg(policy: &PolicyNet, learner: usize, base: u64, fill: f32) -> GradientMsg {
        GradientMsg {
            learner_id: learner,
            grads: policy
                .params()
                .iter()
                .map(|p| Tensor::full(p.shape(), fill))
                .collect(),
            base_version: base,
            batch_len: 32,
            is_ratio: 1.0,
            kl: 0.0,
            surrogate: 0.0,
        }
    }

    #[test]
    fn pure_async_applies_immediately() {
        let policy = tiny_policy(0);
        let msg = grad_msg(&policy, 0, 0, 0.1);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::PureAsync,
        );
        assert_eq!(ps.offer(msg), 1);
        assert_eq!(ps.clock(), 1);
        assert_eq!(ps.pending(), 0);
    }

    #[test]
    fn sgd_update_moves_params_by_weighted_gradient() {
        let policy = tiny_policy(0);
        let before = policy.flatten();
        let msg = grad_msg(&policy, 0, 0, 1.0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.5, 0.0)),
            AggregationRule::PureAsync,
        );
        ps.offer(msg);
        let after = ps.policy.flatten();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - 0.5 - a).abs() < 1e-6, "θ' = θ - lr*g: {b} -> {a}");
        }
    }

    #[test]
    fn fullsync_waits_for_group() {
        let policy = tiny_policy(0);
        let m1 = grad_msg(&policy, 0, 0, 1.0);
        let m2 = grad_msg(&policy, 1, 0, 3.0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(1.0, 0.0)),
            AggregationRule::FullSync { n: 2 },
        );
        assert_eq!(ps.offer(m1), 0, "must wait for the group");
        assert_eq!(ps.pending(), 1);
        let before = ps.policy.flatten();
        assert_eq!(ps.offer(m2), 1);
        let after = ps.policy.flatten();
        // Plain average of fills 1 and 3 = 2, lr 1.
        assert!((before[0] - 2.0 - after[0]).abs() < 1e-5);
    }

    #[test]
    fn staleness_weights_scale_contributions() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(1.0, 0.0)),
            AggregationRule::StalenessAware { d: 1.0, v: 1 },
        );
        // Advance the clock twice with fresh gradients (round 0: unbounded).
        let m = grad_msg(&ps.policy, 0, 0, 0.0);
        ps.offer(m);
        let m = grad_msg(&ps.policy, 0, 1, 0.0);
        ps.offer(m);
        assert_eq!(ps.clock(), 2);
        let before = ps.policy.flatten();
        // A gradient based on version 0 now has staleness 2 -> weight 1/2.
        let stale = grad_msg(&ps.policy, 1, 0, 1.0);
        ps.offer(stale);
        let after = ps.policy.flatten();
        assert!(
            (before[0] - 0.5 - after[0]).abs() < 1e-5,
            "weight 1/δ = 0.5"
        );
        assert_eq!(ps.staleness_log.last(), Some(&2));
    }

    #[test]
    fn staleness_threshold_delays_aggregation() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::StalenessAware { d: 0.25, v: 3 },
        );
        // Calibration round: drive the clock to 4 and record δ_max = 4.
        for i in 0..4 {
            let m = grad_msg(&ps.policy, 0, i, 0.01);
            ps.offer(m);
        }
        let stale = grad_msg(&ps.policy, 1, 0, 0.01);
        ps.offer(stale); // staleness 4 observed in round 0 -> δ_max = 4
        ps.advance_round(); // β = 4 * 0.25 = 1
        assert_eq!(ps.beta(), Some(1.0));
        let clock = ps.clock();
        // A gradient 3 versions stale: average 3 > β=1 -> delayed.
        let old = grad_msg(&ps.policy, 2, clock - 3, 0.01);
        assert_eq!(ps.offer(old), 0);
        assert_eq!(ps.pending(), 1);
        // Two fresh gradients pull the average to (3+0+0)/3 = 1 <= β.
        let f1 = grad_msg(&ps.policy, 3, clock, 0.01);
        assert_eq!(ps.offer(f1), 0, "avg (3+0)/2 = 1.5 > 1 still delayed");
        let f2 = grad_msg(&ps.policy, 4, clock, 0.01);
        assert_eq!(ps.offer(f2), 1, "avg (3+0+0)/3 = 1 <= β admits");
        assert_eq!(ps.pending(), 0);
        assert_eq!(ps.grads_aggregated, 8);
    }

    #[test]
    fn softsync_batches_every_c() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::Softsync { c: 3 },
        );
        for i in 0..2 {
            let m = grad_msg(&ps.policy, i, 0, 0.1);
            assert_eq!(ps.offer(m), 0);
        }
        let m = grad_msg(&ps.policy, 2, 0, 0.1);
        assert_eq!(ps.offer(m), 1);
        assert_eq!(ps.updates, 1);
        assert_eq!(ps.grads_aggregated, 3);
    }

    #[test]
    fn optimizer_kind_integration() {
        let policy = tiny_policy(0);
        let mut ps = ParameterServer::new(
            policy,
            OptimizerKind::Adam.build(0.01),
            AggregationRule::PureAsync,
        );
        for i in 0..5 {
            let m = grad_msg(&ps.policy, 0, i, 0.3);
            ps.offer(m);
        }
        assert_eq!(ps.updates, 5);
        assert!(ps.policy.flatten().iter().all(|x| x.is_finite()));
        assert_eq!(ps.mean_recent_staleness(10), 0.0);
    }

    #[test]
    #[should_panic(expected = "gradient layout mismatch")]
    fn layout_mismatch_panics() {
        let policy = tiny_policy(0);
        let mut bad = grad_msg(&policy, 0, 0, 0.1);
        bad.grads.pop();
        let mut ps = ParameterServer::new(
            policy,
            Box::new(Sgd::new(0.1, 0.0)),
            AggregationRule::PureAsync,
        );
        ps.offer(bad);
    }
}
