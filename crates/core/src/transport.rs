//! Hierarchical data passing (§V-B): "1) *shared memory* for learner
//! functions that are located in the same physical server ..., 2) *remote
//! procedure call (RPC)* for learners' remote communication, and 3)
//! *Distributed Cache* as external storage for persisting trajectories."
//!
//! The three tiers differ in what they cost. Shared memory moves an `Arc`
//! (no copy, no serialisation). RPC serialises into a frame and charges a
//! per-byte link cost. The cache tier persists the payload (it survives the
//! sender) and charges the cache's latency model. A [`Router`] picks the
//! cheapest tier that satisfies the placement of sender and receiver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stellaris_cache::{Cache, Codec};

/// Where a function instance runs (for tier selection).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Physical VM index.
    pub vm: usize,
}

/// The communication tier actually used for a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Same-VM zero-copy handoff.
    SharedMemory,
    /// Cross-VM serialised message.
    Rpc,
    /// Persisted through the distributed cache.
    Cache,
}

/// A payload delivered through the transport: either a zero-copy pointer or
/// a decoded owned value (RPC/cache paths).
pub enum Delivered<T> {
    /// Shared-memory handoff — the very same allocation.
    Shared(Arc<T>),
    /// Deserialised copy.
    Owned(T),
}

impl<T> Delivered<T> {
    /// Borrows the payload regardless of tier.
    pub fn get(&self) -> &T {
        match self {
            Delivered::Shared(v) => v,
            Delivered::Owned(v) => v,
        }
    }

    /// True when the delivery avoided serialisation.
    pub fn was_zero_copy(&self) -> bool {
        matches!(self, Delivered::Shared(_))
    }
}

/// Transfer statistics per tier.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Shared-memory transfers.
    pub shared: AtomicU64,
    /// RPC transfers.
    pub rpc: AtomicU64,
    /// Cache transfers.
    pub cache: AtomicU64,
    /// Serialised bytes moved (RPC + cache).
    pub bytes: AtomicU64,
}

/// Tier-selecting transport router.
pub struct Router {
    cache: Arc<Cache>,
    /// Simulated RPC link cost in microseconds per KiB (recorded).
    pub rpc_us_per_kb: u64,
    rpc_latency_us: AtomicU64,
    /// Counters.
    pub stats: TransportStats,
}

impl Router {
    /// Creates a router over a cache instance.
    pub fn new(cache: Arc<Cache>) -> Self {
        Self {
            cache,
            rpc_us_per_kb: 8, // ~ 1 GbE effective
            rpc_latency_us: AtomicU64::new(0),
            stats: TransportStats::default(),
        }
    }

    /// Which tier a transfer from `src` to `dst` should use; `persist`
    /// forces the cache tier (the payload must outlive the sender, e.g.
    /// trajectories awaiting asynchronous learners).
    pub fn pick(&self, src: Placement, dst: Placement, persist: bool) -> Tier {
        if persist {
            Tier::Cache
        } else if src.vm == dst.vm {
            Tier::SharedMemory
        } else {
            Tier::Rpc
        }
    }

    /// Sends a payload, returning what the receiver observes.
    pub fn send<T: Codec>(
        &self,
        value: Arc<T>,
        src: Placement,
        dst: Placement,
        persist: bool,
        key: &str,
    ) -> (Tier, Delivered<T>) {
        match self.pick(src, dst, persist) {
            Tier::SharedMemory => {
                self.stats.shared.fetch_add(1, Ordering::Relaxed);
                (Tier::SharedMemory, Delivered::Shared(value))
            }
            Tier::Rpc => {
                let frame = value.to_bytes();
                self.stats.rpc.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                self.rpc_latency_us.fetch_add(
                    self.rpc_us_per_kb * (frame.len() as u64 / 1024).max(1),
                    Ordering::Relaxed,
                );
                // lint:allow(L1): decoding a frame this function just encoded; Err means a Codec bug
                let decoded = T::from_bytes(&frame).expect("RPC frame must round-trip");
                (Tier::Rpc, Delivered::Owned(decoded))
            }
            Tier::Cache => {
                let frame = value.to_bytes();
                self.stats.cache.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                self.cache.put(key, frame);
                // lint:allow(L1): the payload was stored one line up with no concurrent deleter of this key
                let back = self.cache.take(key).expect("cache payload just stored");
                // lint:allow(L1): decoding a frame this function just encoded; Err means a Codec bug
                let decoded = T::from_bytes(&back).expect("cached frame must round-trip");
                (Tier::Cache, Delivered::Owned(decoded))
            }
        }
    }

    /// Accumulated simulated RPC latency.
    pub fn rpc_latency_us(&self) -> u64 {
        self.rpc_latency_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_nn::Tensor;

    fn router() -> Router {
        Router::new(Arc::new(Cache::in_memory()))
    }

    #[test]
    fn same_vm_uses_shared_memory() {
        let r = router();
        let t = Arc::new(Tensor::ones(&[64]));
        let (tier, got) = r.send(
            t.clone(),
            Placement { vm: 0 },
            Placement { vm: 0 },
            false,
            "k",
        );
        assert_eq!(tier, Tier::SharedMemory);
        assert!(got.was_zero_copy());
        assert!(Arc::ptr_eq(
            match &got {
                Delivered::Shared(v) => v,
                _ => unreachable!(),
            },
            &t
        ));
        assert_eq!(r.stats.shared.load(Ordering::Relaxed), 1);
        assert_eq!(r.stats.bytes.load(Ordering::Relaxed), 0, "no serialisation");
    }

    #[test]
    fn cross_vm_uses_rpc_and_charges_bytes() {
        let r = router();
        let t = Arc::new(Tensor::ones(&[256, 4]));
        let (tier, got) = r.send(
            t.clone(),
            Placement { vm: 0 },
            Placement { vm: 1 },
            false,
            "k",
        );
        assert_eq!(tier, Tier::Rpc);
        assert!(!got.was_zero_copy());
        assert_eq!(got.get(), t.as_ref());
        assert!(r.stats.bytes.load(Ordering::Relaxed) >= 256 * 4 * 4);
        assert!(r.rpc_latency_us() > 0);
    }

    #[test]
    fn persistence_forces_cache_tier() {
        let r = router();
        let t = Arc::new(Tensor::full(&[8], 3.0));
        let (tier, got) = r.send(t, Placement { vm: 0 }, Placement { vm: 0 }, true, "traj:1");
        assert_eq!(tier, Tier::Cache, "persisted payloads go through the cache");
        assert_eq!(got.get().data()[0], 3.0);
        assert_eq!(r.stats.cache.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tier_selection_matrix() {
        let r = router();
        assert_eq!(
            r.pick(Placement { vm: 2 }, Placement { vm: 2 }, false),
            Tier::SharedMemory
        );
        assert_eq!(
            r.pick(Placement { vm: 0 }, Placement { vm: 3 }, false),
            Tier::Rpc
        );
        assert_eq!(
            r.pick(Placement { vm: 1 }, Placement { vm: 1 }, true),
            Tier::Cache
        );
    }
}
