//! Hierarchical data passing (§V-B): "1) *shared memory* for learner
//! functions that are located in the same physical server ..., 2) *remote
//! procedure call (RPC)* for learners' remote communication, and 3)
//! *Distributed Cache* as external storage for persisting trajectories."
//!
//! The three tiers differ in what they cost. Shared memory moves an `Arc`
//! (no copy, no serialisation). RPC serialises into a frame and charges a
//! per-byte link cost. The cache tier persists the payload (it survives the
//! sender) and charges the cache's latency model. A [`Router`] picks the
//! cheapest tier that satisfies the placement of sender and receiver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stellaris_cache::{Cache, Codec, CodecError};
use stellaris_serverless::{FaultPlan, RetryPolicy};

/// Where a function instance runs (for tier selection).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Physical VM index.
    pub vm: usize,
}

/// The communication tier actually used for a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Same-VM zero-copy handoff.
    SharedMemory,
    /// Cross-VM serialised message.
    Rpc,
    /// Persisted through the distributed cache.
    Cache,
}

/// A payload delivered through the transport: either a zero-copy pointer or
/// a decoded owned value (RPC/cache paths).
pub enum Delivered<T> {
    /// Shared-memory handoff — the very same allocation.
    Shared(Arc<T>),
    /// Deserialised copy.
    Owned(T),
}

impl<T> Delivered<T> {
    /// Borrows the payload regardless of tier.
    pub fn get(&self) -> &T {
        match self {
            Delivered::Shared(v) => v,
            Delivered::Owned(v) => v,
        }
    }

    /// True when the delivery avoided serialisation.
    pub fn was_zero_copy(&self) -> bool {
        matches!(self, Delivered::Shared(_))
    }

    /// Takes ownership of the payload, cloning only when the shared-memory
    /// `Arc` is still referenced elsewhere.
    pub fn into_owned(self) -> T
    where
        T: Clone,
    {
        match self {
            Delivered::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
            Delivered::Owned(v) => v,
        }
    }
}

/// Why a transfer failed. Shared-memory handoffs cannot fail; the RPC and
/// cache tiers can lose or corrupt frames (under fault injection, or in a
/// real deployment a flaky link / evicted key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The frame was dropped in flight and never reached the receiver.
    Dropped,
    /// The frame arrived but did not decode (truncated or corrupt).
    Decode(CodecError),
    /// The cache no longer holds the payload (dropped before the store, or
    /// evicted/taken by someone else).
    Missing,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Dropped => write!(f, "frame dropped in flight"),
            TransportError::Decode(e) => write!(f, "frame failed to decode: {e}"),
            TransportError::Missing => write!(f, "cache payload missing"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Transfer statistics per tier.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Shared-memory transfers.
    pub shared: AtomicU64,
    /// RPC transfers.
    pub rpc: AtomicU64,
    /// Cache transfers.
    pub cache: AtomicU64,
    /// Serialised bytes moved (RPC + cache).
    pub bytes: AtomicU64,
}

/// Tier-selecting transport router.
pub struct Router {
    cache: Arc<Cache>,
    /// Simulated RPC link cost in microseconds per KiB (recorded).
    pub rpc_us_per_kb: u64,
    rpc_latency_us: AtomicU64,
    /// Counters.
    pub stats: TransportStats,
    /// Fault plan consulted for frame drop/corruption (disabled by default).
    faults: Arc<FaultPlan>,
}

impl Router {
    /// Creates a router over a cache instance.
    pub fn new(cache: Arc<Cache>) -> Self {
        Self::with_faults(cache, Arc::new(FaultPlan::disabled()))
    }

    /// Creates a router whose RPC/cache frames are subject to a fault plan
    /// (drop and corruption probabilities). Shared-memory handoffs move an
    /// `Arc` in-process and are never faulted.
    pub fn with_faults(cache: Arc<Cache>, faults: Arc<FaultPlan>) -> Self {
        Self {
            cache,
            rpc_us_per_kb: 8, // ~ 1 GbE effective
            rpc_latency_us: AtomicU64::new(0),
            stats: TransportStats::default(),
            faults,
        }
    }

    /// Which tier a transfer from `src` to `dst` should use; `persist`
    /// forces the cache tier (the payload must outlive the sender, e.g.
    /// trajectories awaiting asynchronous learners).
    pub fn pick(&self, src: Placement, dst: Placement, persist: bool) -> Tier {
        if persist {
            Tier::Cache
        } else if src.vm == dst.vm {
            Tier::SharedMemory
        } else {
            Tier::Rpc
        }
    }

    /// Sends a payload, returning what the receiver observes.
    ///
    /// Shared-memory handoffs are infallible. RPC and cache frames can be
    /// dropped ([`TransportError::Dropped`]) or corrupted in flight — a
    /// corrupted frame is truncated, which the length-prefixed codec always
    /// detects and surfaces as [`TransportError::Decode`]. Callers that must
    /// get the payload through use [`Router::send_with_retry`].
    pub fn send<T: Codec>(
        &self,
        value: Arc<T>,
        src: Placement,
        dst: Placement,
        persist: bool,
        key: &str,
    ) -> Result<(Tier, Delivered<T>), TransportError> {
        match self.pick(src, dst, persist) {
            Tier::SharedMemory => {
                self.stats.shared.fetch_add(1, Ordering::Relaxed);
                Ok((Tier::SharedMemory, Delivered::Shared(value)))
            }
            Tier::Rpc => {
                let frame = value.to_bytes();
                self.stats.rpc.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                self.rpc_latency_us.fetch_add(
                    self.rpc_us_per_kb * (frame.len() as u64 / 1024).max(1),
                    Ordering::Relaxed,
                );
                if self.faults.should_drop_frame() {
                    return Err(TransportError::Dropped);
                }
                let wire: &[u8] = if self.faults.should_corrupt_frame() {
                    // In-flight corruption: the receiver sees a truncated
                    // frame, which the length-prefixed codec rejects.
                    &frame[..frame.len() / 2]
                } else {
                    &frame
                };
                let decoded = T::from_bytes(wire).map_err(TransportError::Decode)?;
                Ok((Tier::Rpc, Delivered::Owned(decoded)))
            }
            Tier::Cache => {
                let frame = value.to_bytes();
                self.stats.cache.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                if self.faults.should_drop_frame() {
                    // Dropped on the way to the cache: nothing was stored.
                    return Err(TransportError::Missing);
                }
                let stored = if self.faults.should_corrupt_frame() {
                    bytes::Bytes::copy_from_slice(&frame[..frame.len() / 2])
                } else {
                    frame
                };
                self.cache.put(key, stored);
                let back = self.cache.take(key).ok_or(TransportError::Missing)?;
                let decoded = T::from_bytes(&back).map_err(TransportError::Decode)?;
                Ok((Tier::Cache, Delivered::Owned(decoded)))
            }
        }
    }

    /// Sends with retry: re-encodes and re-sends on drop/corruption with the
    /// fault plan's seeded backoff jitter, giving up (and counting an
    /// exhaustion) after `retry.max_retries` retries.
    pub fn send_with_retry<T: Codec>(
        &self,
        value: Arc<T>,
        src: Placement,
        dst: Placement,
        persist: bool,
        key: &str,
        retry: &RetryPolicy,
    ) -> Result<(Tier, Delivered<T>), TransportError> {
        let mut attempt = 0u32;
        loop {
            match self.send(value.clone(), src, dst, persist, key) {
                Ok(out) => return Ok(out),
                Err(err) => {
                    if attempt >= retry.max_retries {
                        self.faults.note_exhausted();
                        return Err(err);
                    }
                    let backoff = retry.backoff(attempt, self.faults.jitter());
                    self.faults.note_retry(backoff);
                    if !backoff.is_zero() {
                        let _backoff = stellaris_telemetry::span("serverless.retry_backoff");
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Accumulated simulated RPC latency.
    pub fn rpc_latency_us(&self) -> u64 {
        self.rpc_latency_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_nn::Tensor;

    fn router() -> Router {
        Router::new(Arc::new(Cache::in_memory()))
    }

    #[test]
    fn same_vm_uses_shared_memory() {
        let r = router();
        let t = Arc::new(Tensor::ones(&[64]));
        let (tier, got) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 0 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(tier, Tier::SharedMemory);
        assert!(got.was_zero_copy());
        assert!(Arc::ptr_eq(
            match &got {
                Delivered::Shared(v) => v,
                _ => unreachable!(),
            },
            &t
        ));
        assert_eq!(r.stats.shared.load(Ordering::Relaxed), 1);
        assert_eq!(r.stats.bytes.load(Ordering::Relaxed), 0, "no serialisation");
    }

    #[test]
    fn cross_vm_uses_rpc_and_charges_bytes() {
        let r = router();
        let t = Arc::new(Tensor::ones(&[256, 4]));
        let (tier, got) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 1 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(tier, Tier::Rpc);
        assert!(!got.was_zero_copy());
        assert_eq!(got.get(), t.as_ref());
        assert!(r.stats.bytes.load(Ordering::Relaxed) >= 256 * 4 * 4);
        assert!(r.rpc_latency_us() > 0);
    }

    #[test]
    fn persistence_forces_cache_tier() {
        let r = router();
        let t = Arc::new(Tensor::full(&[8], 3.0));
        let (tier, got) = r
            .send(t, Placement { vm: 0 }, Placement { vm: 0 }, true, "traj:1")
            .unwrap();
        assert_eq!(tier, Tier::Cache, "persisted payloads go through the cache");
        assert_eq!(got.get().data()[0], 3.0);
        assert_eq!(r.stats.cache.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tier_selection_matrix() {
        let r = router();
        assert_eq!(
            r.pick(Placement { vm: 2 }, Placement { vm: 2 }, false),
            Tier::SharedMemory
        );
        assert_eq!(
            r.pick(Placement { vm: 0 }, Placement { vm: 3 }, false),
            Tier::Rpc
        );
        assert_eq!(
            r.pick(Placement { vm: 1 }, Placement { vm: 1 }, true),
            Tier::Cache
        );
    }

    // ----- fault injection over the wire ---------------------------------

    use stellaris_serverless::FaultConfig;

    fn chaos_router(cfg: FaultConfig) -> Router {
        Router::with_faults(Arc::new(Cache::in_memory()), Arc::new(FaultPlan::new(cfg)))
    }

    #[test]
    fn dropped_rpc_frame_is_a_typed_error() {
        let r = chaos_router(FaultConfig {
            frame_drop: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 1 }, false, "k");
        assert_eq!(out.err(), Some(TransportError::Dropped));
    }

    #[test]
    fn corrupted_frame_fails_decode_not_panic() {
        let r = chaos_router(FaultConfig {
            frame_corrupt: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 1 }, false, "k");
        assert!(
            matches!(out, Err(TransportError::Decode(_))),
            "truncated frame must surface as a decode error"
        );
    }

    #[test]
    fn corrupted_cache_frame_fails_decode() {
        let r = chaos_router(FaultConfig {
            frame_corrupt: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 0 }, true, "traj:1");
        assert!(matches!(out, Err(TransportError::Decode(_))));
    }

    #[test]
    fn shared_memory_is_never_faulted() {
        let r = chaos_router(FaultConfig {
            frame_drop: 1.0,
            frame_corrupt: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 0 }, false, "k");
        assert!(out.is_ok(), "in-process Arc handoff cannot drop a frame");
    }

    #[test]
    fn send_with_retry_pushes_through_lossy_link() {
        // p(drop)=0.5 with 16 retries: effectively certain delivery, and
        // seeded, so the test is deterministic.
        let r = chaos_router(FaultConfig {
            seed: 5,
            frame_drop: 0.5,
            ..FaultConfig::off()
        });
        let retry = RetryPolicy {
            max_retries: 16,
            base: std::time::Duration::from_micros(10),
            cap: std::time::Duration::from_micros(100),
        };
        let t = Arc::new(Tensor::ones(&[32]));
        for i in 0..20 {
            let (tier, got) = r
                .send_with_retry(
                    t.clone(),
                    Placement { vm: 0 },
                    Placement { vm: 1 },
                    false,
                    &format!("k{i}"),
                    &retry,
                )
                .expect("retry must eventually deliver");
            assert_eq!(tier, Tier::Rpc);
            assert_eq!(got.get(), t.as_ref());
        }
        assert!(
            r.faults.report().frames_dropped > 0,
            "the lossy link must actually drop frames"
        );
    }

    #[test]
    fn into_owned_returns_the_payload_on_every_tier() {
        let r = router();
        let t = Arc::new(Tensor::full(&[4], 2.0));
        let (_, shared) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 0 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(shared.into_owned(), *t);
        let (_, owned) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 1 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(owned.into_owned(), *t);
    }
}
