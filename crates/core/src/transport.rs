//! Hierarchical data passing (§V-B): "1) *shared memory* for learner
//! functions that are located in the same physical server ..., 2) *remote
//! procedure call (RPC)* for learners' remote communication, and 3)
//! *Distributed Cache* as external storage for persisting trajectories."
//!
//! The three tiers differ in what they cost. Shared memory moves an `Arc`
//! (no copy, no serialisation). RPC serialises into a frame and charges a
//! per-byte link cost. The cache tier persists the payload (it survives the
//! sender) and charges the cache's latency model. A [`Router`] picks the
//! cheapest tier that satisfies the placement of sender and receiver.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stellaris_cache::frame::{op, FrameReader, WireError};
use stellaris_cache::{Cache, Codec, CodecError};
use stellaris_serverless::{FaultPlan, RetryPolicy, WireStream};

/// Where a function instance runs (for tier selection).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Physical VM index.
    pub vm: usize,
}

/// The communication tier actually used for a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Same-VM zero-copy handoff.
    SharedMemory,
    /// Cross-VM serialised message (simulated link).
    Rpc,
    /// Cross-VM frames over a real socket (a registered wire route).
    Socket,
    /// Persisted through the distributed cache.
    Cache,
}

/// A payload delivered through the transport: either a zero-copy pointer or
/// a decoded owned value (RPC/cache paths).
pub enum Delivered<T> {
    /// Shared-memory handoff — the very same allocation.
    Shared(Arc<T>),
    /// Deserialised copy.
    Owned(T),
}

impl<T> Delivered<T> {
    /// Borrows the payload regardless of tier.
    pub fn get(&self) -> &T {
        match self {
            Delivered::Shared(v) => v,
            Delivered::Owned(v) => v,
        }
    }

    /// True when the delivery avoided serialisation.
    pub fn was_zero_copy(&self) -> bool {
        matches!(self, Delivered::Shared(_))
    }

    /// Takes ownership of the payload, cloning only when the shared-memory
    /// `Arc` is still referenced elsewhere.
    pub fn into_owned(self) -> T
    where
        T: Clone,
    {
        match self {
            Delivered::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
            Delivered::Owned(v) => v,
        }
    }
}

/// Why a transfer failed. Shared-memory handoffs cannot fail; the RPC and
/// cache tiers can lose or corrupt frames (under fault injection, or in a
/// real deployment a flaky link / evicted key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The frame was dropped in flight and never reached the receiver.
    Dropped,
    /// The frame arrived but did not decode (truncated or corrupt).
    Decode(CodecError),
    /// The cache no longer holds the payload (dropped before the store, or
    /// evicted/taken by someone else).
    Missing,
    /// A socket-tier frame failed at the wire level: connection reset,
    /// truncated stream, oversized frame, protocol mismatch. (Payloads that
    /// arrive but fail to decode map to [`TransportError::Decode`] like on
    /// every other tier.)
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Dropped => write!(f, "frame dropped in flight"),
            TransportError::Decode(e) => write!(f, "frame failed to decode: {e}"),
            TransportError::Missing => write!(f, "cache payload missing"),
            TransportError::Wire(e) => write!(f, "wire failure: {e}"),
        }
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Codec(c) => TransportError::Decode(c),
            other => TransportError::Wire(other),
        }
    }
}

impl std::error::Error for TransportError {}

/// Transfer statistics per tier.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Shared-memory transfers.
    pub shared: AtomicU64,
    /// RPC transfers.
    pub rpc: AtomicU64,
    /// Socket-tier transfers (frames over a real connection).
    pub socket: AtomicU64,
    /// Cache transfers.
    pub cache: AtomicU64,
    /// Serialised bytes moved (RPC + socket + cache).
    pub bytes: AtomicU64,
}

/// One registered socket destination: the peer's address plus a lazily
/// (re)established framed connection. A wire failure tears the connection
/// down; the next send through the route reconnects, so retry loops
/// recover from real connection resets without extra plumbing.
struct WireRoute {
    addr: String,
    max_frame: usize,
    conn: parking_lot::Mutex<Option<FrameReader<WireStream>>>,
}

/// Tier-selecting transport router.
pub struct Router {
    cache: Arc<Cache>,
    /// Simulated RPC link cost in microseconds per KiB (recorded).
    pub rpc_us_per_kb: u64,
    rpc_latency_us: AtomicU64,
    /// Counters.
    pub stats: TransportStats,
    /// Fault plan consulted for frame drop/corruption (disabled by default).
    faults: Arc<FaultPlan>,
    /// Socket routes by destination VM: when present, cross-VM sends use a
    /// real connection instead of the simulated RPC link.
    routes: parking_lot::Mutex<HashMap<usize, Arc<WireRoute>>>,
}

impl Router {
    /// Creates a router over a cache instance.
    pub fn new(cache: Arc<Cache>) -> Self {
        Self::with_faults(cache, Arc::new(FaultPlan::disabled()))
    }

    /// Creates a router whose RPC/cache frames are subject to a fault plan
    /// (drop and corruption probabilities). Shared-memory handoffs move an
    /// `Arc` in-process and are never faulted.
    pub fn with_faults(cache: Arc<Cache>, faults: Arc<FaultPlan>) -> Self {
        Self {
            cache,
            rpc_us_per_kb: 8, // ~ 1 GbE effective
            rpc_latency_us: AtomicU64::new(0),
            stats: TransportStats::default(),
            faults,
            routes: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Registers a socket route for a destination VM. Cross-VM sends to
    /// `vm` will frame their payload over a real connection to `addr`
    /// (`tcp:HOST:PORT` or `uds:/path`); the peer must echo each frame back
    /// (a [`op::RELAY`]-serving worker). The connection is established
    /// lazily on first use and re-established after any wire failure.
    pub fn add_socket_route(&self, vm: usize, addr: impl Into<String>, max_frame: usize) {
        self.routes.lock().insert(
            vm,
            Arc::new(WireRoute {
                addr: addr.into(),
                max_frame: max_frame.max(1),
                conn: parking_lot::Mutex::new(None),
            }),
        );
    }

    /// Which tier a transfer from `src` to `dst` should use; `persist`
    /// forces the cache tier (the payload must outlive the sender, e.g.
    /// trajectories awaiting asynchronous learners). Cross-VM transfers use
    /// the socket tier when a wire route to `dst` is registered, otherwise
    /// the simulated RPC link.
    pub fn pick(&self, src: Placement, dst: Placement, persist: bool) -> Tier {
        if persist {
            Tier::Cache
        } else if src.vm == dst.vm {
            Tier::SharedMemory
        } else if self.routes.lock().contains_key(&dst.vm) {
            Tier::Socket
        } else {
            Tier::Rpc
        }
    }

    /// Frames the payload over the route's real connection and decodes what
    /// the peer echoes back. Faults are exercised against the actual
    /// socket: a dropped frame shuts the connection down (the peer observes
    /// a reset, the next send reconnects), a corrupted frame carries a
    /// truncated *encoding* inside an intact frame (the stream stays in
    /// sync and the decode fails with a typed error).
    fn send_socket<T: Codec>(
        &self,
        route: &WireRoute,
        value: &T,
    ) -> Result<(Tier, Delivered<T>), TransportError> {
        let mut span = stellaris_telemetry::span("transport.socket_send");
        self.stats.socket.fetch_add(1, Ordering::Relaxed);
        // Fault draws happen before the route lock is taken: the fault
        // plan's per-class rng has its own mutex, which must never nest
        // under a held connection guard.
        if self.faults.should_drop_frame() {
            // A real reset, not a simulated one: the peer's blocking read
            // observes EOF and the next send through this route redials.
            let stale = route.conn.lock().take();
            if let Some(mut reader) = stale {
                let _already_closed = reader.get_mut().shutdown();
            }
            span.field("dropped", true);
            return Err(TransportError::Dropped);
        }
        let corrupt = self.faults.should_corrupt_frame();
        let mut conn = route.conn.lock();
        if conn.is_none() {
            let stream = WireStream::connect_addr(&route.addr)
                .map_err(|e| TransportError::Wire(WireError::from(e)))?;
            *conn = Some(FrameReader::with_cap(stream, route.max_frame));
        }
        // `conn` was just filled above; poisoning the Option again on every
        // error path below keeps a desynced stream from being reused.
        let Some(reader) = conn.as_mut() else {
            return Err(TransportError::Wire(WireError::Truncated));
        };
        let frame_len;
        let sent = if corrupt {
            let encoded = value.to_bytes();
            let cut = &encoded[..encoded.len() / 2];
            frame_len = cut.len();
            span.field("corrupted", true);
            stellaris_cache::write_frame(
                reader.get_mut(),
                op::RELAY,
                span.id(),
                cut,
                route.max_frame,
            )
        } else {
            frame_len = value.encoded_len();
            stellaris_cache::write_value_frame(
                reader.get_mut(),
                op::RELAY,
                span.id(),
                value,
                route.max_frame,
            )
        };
        if let Err(e) = sent {
            // Release the route lock before tearing the socket down; a
            // blocking close must never run under it.
            let dead = conn.take();
            drop(conn);
            if let Some(mut reader) = dead {
                let _already_closed = reader.get_mut().shutdown();
            }
            return Err(e.into());
        }
        self.stats.bytes.fetch_add(
            (frame_len + stellaris_cache::HEADER_LEN) as u64,
            Ordering::Relaxed,
        );
        let read = reader.read_frame();
        let reply = match read {
            Ok(f) => f,
            Err(e) => {
                let dead = conn.take();
                drop(conn);
                if let Some(mut reader) = dead {
                    let _already_closed = reader.get_mut().shutdown();
                }
                return Err(e.into());
            }
        };
        if reply.header.kind == op::ERR {
            // The peer rejected the frame (its decode failed); the payload
            // never arrived intact.
            return Err(TransportError::Decode(CodecError::Corrupt(
                "peer rejected frame",
            )));
        }
        let decoded = reply.decode_value::<T>().map_err(TransportError::from)?;
        Ok((Tier::Socket, Delivered::Owned(decoded)))
    }

    /// Sends a payload, returning what the receiver observes.
    ///
    /// Shared-memory handoffs are infallible. RPC and cache frames can be
    /// dropped ([`TransportError::Dropped`]) or corrupted in flight — a
    /// corrupted frame is truncated, which the length-prefixed codec always
    /// detects and surfaces as [`TransportError::Decode`]. Callers that must
    /// get the payload through use [`Router::send_with_retry`].
    pub fn send<T: Codec>(
        &self,
        value: Arc<T>,
        src: Placement,
        dst: Placement,
        persist: bool,
        key: &str,
    ) -> Result<(Tier, Delivered<T>), TransportError> {
        match self.pick(src, dst, persist) {
            Tier::SharedMemory => {
                self.stats.shared.fetch_add(1, Ordering::Relaxed);
                Ok((Tier::SharedMemory, Delivered::Shared(value)))
            }
            Tier::Socket => {
                let route = self.routes.lock().get(&dst.vm).cloned();
                match route {
                    Some(route) => self.send_socket(&route, value.as_ref()),
                    // The route vanished between pick and send; treat it
                    // like the simulated link losing the frame.
                    None => Err(TransportError::Dropped),
                }
            }
            Tier::Rpc => {
                let frame = value.to_bytes();
                self.stats.rpc.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                self.rpc_latency_us.fetch_add(
                    self.rpc_us_per_kb * (frame.len() as u64 / 1024).max(1),
                    Ordering::Relaxed,
                );
                if self.faults.should_drop_frame() {
                    return Err(TransportError::Dropped);
                }
                let wire: &[u8] = if self.faults.should_corrupt_frame() {
                    // In-flight corruption: the receiver sees a truncated
                    // frame, which the length-prefixed codec rejects.
                    &frame[..frame.len() / 2]
                } else {
                    &frame
                };
                let decoded = T::from_bytes(wire).map_err(TransportError::Decode)?;
                Ok((Tier::Rpc, Delivered::Owned(decoded)))
            }
            Tier::Cache => {
                let frame = value.to_bytes();
                self.stats.cache.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                if self.faults.should_drop_frame() {
                    // Dropped on the way to the cache: nothing was stored.
                    return Err(TransportError::Missing);
                }
                let stored = if self.faults.should_corrupt_frame() {
                    bytes::Bytes::copy_from_slice(&frame[..frame.len() / 2])
                } else {
                    frame
                };
                self.cache.put(key, stored);
                let back = self.cache.take(key).ok_or(TransportError::Missing)?;
                let decoded = T::from_bytes(&back).map_err(TransportError::Decode)?;
                Ok((Tier::Cache, Delivered::Owned(decoded)))
            }
        }
    }

    /// Sends with retry: re-encodes and re-sends on drop/corruption with the
    /// fault plan's seeded backoff jitter, giving up (and counting an
    /// exhaustion) after `retry.max_retries` retries.
    pub fn send_with_retry<T: Codec>(
        &self,
        value: Arc<T>,
        src: Placement,
        dst: Placement,
        persist: bool,
        key: &str,
        retry: &RetryPolicy,
    ) -> Result<(Tier, Delivered<T>), TransportError> {
        let mut attempt = 0u32;
        loop {
            match self.send(value.clone(), src, dst, persist, key) {
                Ok(out) => return Ok(out),
                Err(err) => {
                    if attempt >= retry.max_retries {
                        self.faults.note_exhausted();
                        return Err(err);
                    }
                    let backoff = retry.backoff(attempt, self.faults.jitter());
                    self.faults.note_retry(backoff);
                    if !backoff.is_zero() {
                        let _backoff = stellaris_telemetry::span("serverless.retry_backoff");
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Accumulated simulated RPC latency.
    pub fn rpc_latency_us(&self) -> u64 {
        self.rpc_latency_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_nn::Tensor;

    fn router() -> Router {
        Router::new(Arc::new(Cache::in_memory()))
    }

    #[test]
    fn same_vm_uses_shared_memory() {
        let r = router();
        let t = Arc::new(Tensor::ones(&[64]));
        let (tier, got) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 0 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(tier, Tier::SharedMemory);
        assert!(got.was_zero_copy());
        assert!(Arc::ptr_eq(
            match &got {
                Delivered::Shared(v) => v,
                _ => unreachable!(),
            },
            &t
        ));
        assert_eq!(r.stats.shared.load(Ordering::Relaxed), 1);
        assert_eq!(r.stats.bytes.load(Ordering::Relaxed), 0, "no serialisation");
    }

    #[test]
    fn cross_vm_uses_rpc_and_charges_bytes() {
        let r = router();
        let t = Arc::new(Tensor::ones(&[256, 4]));
        let (tier, got) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 1 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(tier, Tier::Rpc);
        assert!(!got.was_zero_copy());
        assert_eq!(got.get(), t.as_ref());
        assert!(r.stats.bytes.load(Ordering::Relaxed) >= 256 * 4 * 4);
        assert!(r.rpc_latency_us() > 0);
    }

    #[test]
    fn persistence_forces_cache_tier() {
        let r = router();
        let t = Arc::new(Tensor::full(&[8], 3.0));
        let (tier, got) = r
            .send(t, Placement { vm: 0 }, Placement { vm: 0 }, true, "traj:1")
            .unwrap();
        assert_eq!(tier, Tier::Cache, "persisted payloads go through the cache");
        assert_eq!(got.get().data()[0], 3.0);
        assert_eq!(r.stats.cache.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tier_selection_matrix() {
        let r = router();
        assert_eq!(
            r.pick(Placement { vm: 2 }, Placement { vm: 2 }, false),
            Tier::SharedMemory
        );
        assert_eq!(
            r.pick(Placement { vm: 0 }, Placement { vm: 3 }, false),
            Tier::Rpc
        );
        assert_eq!(
            r.pick(Placement { vm: 1 }, Placement { vm: 1 }, true),
            Tier::Cache
        );
    }

    // ----- fault injection over the wire ---------------------------------

    use stellaris_serverless::FaultConfig;

    fn chaos_router(cfg: FaultConfig) -> Router {
        Router::with_faults(Arc::new(Cache::in_memory()), Arc::new(FaultPlan::new(cfg)))
    }

    #[test]
    fn dropped_rpc_frame_is_a_typed_error() {
        let r = chaos_router(FaultConfig {
            frame_drop: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 1 }, false, "k");
        assert_eq!(out.err(), Some(TransportError::Dropped));
    }

    #[test]
    fn corrupted_frame_fails_decode_not_panic() {
        let r = chaos_router(FaultConfig {
            frame_corrupt: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 1 }, false, "k");
        assert!(
            matches!(out, Err(TransportError::Decode(_))),
            "truncated frame must surface as a decode error"
        );
    }

    #[test]
    fn corrupted_cache_frame_fails_decode() {
        let r = chaos_router(FaultConfig {
            frame_corrupt: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 0 }, true, "traj:1");
        assert!(matches!(out, Err(TransportError::Decode(_))));
    }

    #[test]
    fn shared_memory_is_never_faulted() {
        let r = chaos_router(FaultConfig {
            frame_drop: 1.0,
            frame_corrupt: 1.0,
            ..FaultConfig::off()
        });
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 0 }, false, "k");
        assert!(out.is_ok(), "in-process Arc handoff cannot drop a frame");
    }

    #[test]
    fn send_with_retry_pushes_through_lossy_link() {
        // p(drop)=0.5 with 16 retries: effectively certain delivery, and
        // seeded, so the test is deterministic.
        let r = chaos_router(FaultConfig {
            seed: 5,
            frame_drop: 0.5,
            ..FaultConfig::off()
        });
        let retry = RetryPolicy {
            max_retries: 16,
            base: std::time::Duration::from_micros(10),
            cap: std::time::Duration::from_micros(100),
        };
        let t = Arc::new(Tensor::ones(&[32]));
        for i in 0..20 {
            let (tier, got) = r
                .send_with_retry(
                    t.clone(),
                    Placement { vm: 0 },
                    Placement { vm: 1 },
                    false,
                    &format!("k{i}"),
                    &retry,
                )
                .expect("retry must eventually deliver");
            assert_eq!(tier, Tier::Rpc);
            assert_eq!(got.get(), t.as_ref());
        }
        assert!(
            r.faults.report().frames_dropped > 0,
            "the lossy link must actually drop frames"
        );
    }

    // ----- the socket tier: frames over a real TCP connection ------------

    /// Spawns a relay peer on loopback: echoes every frame back as OK and
    /// keeps accepting fresh connections after resets. The thread is
    /// detached; it dies with the test process.
    fn spawn_relay() -> String {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = format!(
            "tcp:127.0.0.1:{}",
            listener.local_addr().expect("addr").port()
        );
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let mut reader = FrameReader::new(WireStream::Tcp(stream));
                while let Ok(frame) = reader.read_frame() {
                    let cap = reader.max_frame();
                    if stellaris_cache::write_frame(
                        reader.get_mut(),
                        op::OK,
                        frame.header.trace_id,
                        &frame.payload,
                        cap,
                    )
                    .is_err()
                    {
                        break;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn registered_route_switches_cross_vm_to_socket_tier() {
        let r = router();
        let addr = spawn_relay();
        r.add_socket_route(1, addr, 1 << 20);
        assert_eq!(
            r.pick(Placement { vm: 0 }, Placement { vm: 1 }, false),
            Tier::Socket
        );
        assert_eq!(
            r.pick(Placement { vm: 0 }, Placement { vm: 2 }, false),
            Tier::Rpc,
            "unrouted VMs keep the simulated link"
        );
        let t = Arc::new(Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.25], &[4]));
        for _ in 0..3 {
            let (tier, got) = r
                .send(
                    t.clone(),
                    Placement { vm: 0 },
                    Placement { vm: 1 },
                    false,
                    "k",
                )
                .expect("socket roundtrip");
            assert_eq!(tier, Tier::Socket);
            assert_eq!(got.get(), t.as_ref());
        }
        assert_eq!(r.stats.socket.load(Ordering::Relaxed), 3);
        assert!(r.stats.bytes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn dropped_socket_frame_resets_the_connection_and_recovers() {
        let addr = spawn_relay();
        // Alternate-ish drop pattern, seeded: some sends reset the socket.
        let r = chaos_router(FaultConfig {
            seed: 21,
            frame_drop: 0.5,
            ..FaultConfig::off()
        });
        r.add_socket_route(1, addr, 1 << 20);
        let retry = RetryPolicy {
            max_retries: 16,
            base: std::time::Duration::from_micros(10),
            cap: std::time::Duration::from_micros(100),
        };
        let t = Arc::new(Tensor::ones(&[32]));
        for i in 0..10 {
            let (tier, got) = r
                .send_with_retry(
                    t.clone(),
                    Placement { vm: 0 },
                    Placement { vm: 1 },
                    false,
                    &format!("k{i}"),
                    &retry,
                )
                .expect("retry must reconnect through resets");
            assert_eq!(tier, Tier::Socket);
            assert_eq!(got.get(), t.as_ref());
        }
        assert!(
            r.faults.report().frames_dropped > 0,
            "resets must actually fire"
        );
    }

    #[test]
    fn corrupted_socket_frame_is_a_typed_decode_error_and_stream_stays_usable() {
        let addr = spawn_relay();
        let r = chaos_router(FaultConfig {
            frame_corrupt: 1.0,
            ..FaultConfig::off()
        });
        r.add_socket_route(1, addr, 1 << 20);
        let t = Arc::new(Tensor::ones(&[16]));
        let out = r.send(
            t.clone(),
            Placement { vm: 0 },
            Placement { vm: 1 },
            false,
            "k",
        );
        assert!(
            matches!(out, Err(TransportError::Decode(_))),
            "truncated encoding must fail decode, got {:?}",
            out.as_ref().map(|(tier, _)| *tier)
        );
        // The frame itself was well-formed, so the stream is still in sync:
        // a fault-free router reusing the same peer keeps working (here we
        // just verify the peer still answers a fresh connection).
        let clean = router();
        let addr2 = spawn_relay();
        clean.add_socket_route(1, addr2, 1 << 20);
        assert!(clean
            .send(t, Placement { vm: 0 }, Placement { vm: 1 }, false, "k")
            .is_ok());
    }

    #[test]
    fn unreachable_route_is_a_typed_wire_error() {
        let r = router();
        // Port 1 on loopback: nothing listens there.
        r.add_socket_route(1, "tcp:127.0.0.1:1", 1 << 20);
        let t = Arc::new(Tensor::ones(&[4]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 1 }, false, "k");
        assert!(
            matches!(out, Err(TransportError::Wire(WireError::Io(_)))),
            "connection refused must surface as a wire error"
        );
    }

    #[test]
    fn oversized_payload_rejected_before_hitting_the_socket() {
        let r = router();
        let addr = spawn_relay();
        r.add_socket_route(1, addr, 64); // 64-byte cap
        let t = Arc::new(Tensor::ones(&[256]));
        let out = r.send(t, Placement { vm: 0 }, Placement { vm: 1 }, false, "k");
        assert!(
            matches!(out, Err(TransportError::Wire(WireError::TooLarge { .. }))),
            "cap must reject before encoding"
        );
    }

    #[test]
    fn into_owned_returns_the_payload_on_every_tier() {
        let r = router();
        let t = Arc::new(Tensor::full(&[4], 2.0));
        let (_, shared) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 0 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(shared.into_owned(), *t);
        let (_, owned) = r
            .send(
                t.clone(),
                Placement { vm: 0 },
                Placement { vm: 1 },
                false,
                "k",
            )
            .unwrap();
        assert_eq!(owned.into_owned(), *t);
    }
}
