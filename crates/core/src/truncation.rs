//! Global importance-sampling truncation (§V-A, Eq. 2).
//!
//! Each asynchronous learner holds a unique policy π_θi; clipping only its
//! *local* ratio π_θi/μ_θ leaves the cross-learner ratios unbounded and the
//! aggregated update can drift (Fig. 5a). Stellaris therefore truncates with
//! a *global view*: `R' = min(|min_i(π_θi/μ_θ)|, ρ)`, the minimum
//! learner/actor ratio observed across the learner group during the
//! aggregation phase, capped at ρ.
//!
//! Implementation: every learner publishes the minimum |ratio| of its most
//! recent mini-batch to this board; before computing gradients, a learner
//! reads the group minimum and uses `min(group_min, ρ)` as the ratio cap
//! inside its surrogate objective (the `ratio_cap` parameter of
//! [`stellaris_rl::ppo_gradients`]).

use std::collections::HashMap;

use parking_lot::RwLock;

/// Shared cross-learner ratio board.
///
/// ```
/// use stellaris_core::RatioBoard;
/// let board = RatioBoard::new(1.0);
/// board.publish(0, 0.8);
/// board.publish(1, 1.7);
/// assert_eq!(board.cap(), Some(0.8)); // min(min_i ratio, ρ)
/// ```
pub struct RatioBoard {
    /// Truncation threshold ρ (paper default 1.0).
    pub rho: f32,
    enabled: bool,
    ratios: RwLock<HashMap<usize, f32>>,
}

impl RatioBoard {
    /// Creates an enabled board with threshold `rho`.
    pub fn new(rho: f32) -> Self {
        assert!(rho > 0.0, "truncation threshold must be positive");
        Self {
            rho,
            enabled: true,
            ratios: RwLock::new(HashMap::new()),
        }
    }

    /// A disabled board: [`RatioBoard::cap`] returns `None`, so learners run
    /// vanilla (local-clip-only) objectives. Used by the Fig. 11(b) ablation.
    pub fn disabled() -> Self {
        Self {
            rho: f32::INFINITY,
            enabled: false,
            ratios: RwLock::new(HashMap::new()),
        }
    }

    /// Whether global truncation is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Publishes learner `id`'s latest per-batch minimum |ratio|.
    pub fn publish(&self, learner_id: usize, min_abs_ratio: f32) {
        if !self.enabled || !min_abs_ratio.is_finite() {
            return;
        }
        self.ratios.write().insert(learner_id, min_abs_ratio.abs());
    }

    /// Removes a terminated learner from the group view.
    pub fn retire(&self, learner_id: usize) {
        self.ratios.write().remove(&learner_id);
    }

    /// Eq. 2: the current global cap `min(|min_i(π_θi/μ_θ)|, ρ)`, or `None`
    /// when truncation is disabled. With no published ratios yet the cap is
    /// just ρ.
    pub fn cap(&self) -> Option<f32> {
        if !self.enabled {
            return None;
        }
        let ratios = self.ratios.read();
        let group_min = ratios.values().fold(f32::INFINITY, |m, &r| m.min(r));
        let cap = group_min.min(self.rho);
        debug_assert!(
            cap <= self.rho && cap >= 0.0,
            "Eq. 2 cap must stay within [0, rho={}]: got {cap}",
            self.rho
        );
        Some(cap)
    }

    /// Number of learners currently contributing to the group view.
    pub fn group_size(&self) -> usize {
        self.ratios.read().len()
    }
}

/// Theorem 2's reward-improvement lower bound:
/// `J(π_i) - J(μ) ≥ -γ ε √(2 ln ρ) / (1-γ)²`.
/// Returns the bound's magnitude (the worst-case regression) for given
/// `gamma`, advantage bound `epsilon` and truncation threshold `rho >= 1`.
pub fn reward_improvement_bound(gamma: f32, epsilon: f32, rho: f32) -> f32 {
    assert!((0.0..1.0).contains(&gamma), "gamma must be in [0,1)");
    assert!(rho >= 1.0, "bound is stated for rho >= 1");
    gamma * epsilon * (2.0 * rho.ln()).max(0.0).sqrt() / ((1.0 - gamma) * (1.0 - gamma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_board_caps_at_rho() {
        let b = RatioBoard::new(1.0);
        assert_eq!(b.cap(), Some(1.0));
    }

    #[test]
    fn cap_is_group_minimum_when_below_rho() {
        let b = RatioBoard::new(1.0);
        b.publish(0, 0.9);
        b.publish(1, 0.6);
        b.publish(2, 1.4);
        assert_eq!(b.cap(), Some(0.6));
        assert_eq!(b.group_size(), 3);
    }

    #[test]
    fn cap_never_exceeds_rho() {
        let b = RatioBoard::new(1.0);
        b.publish(0, 5.0);
        b.publish(1, 3.0);
        assert_eq!(b.cap(), Some(1.0));
    }

    #[test]
    fn retire_removes_learner_from_view() {
        let b = RatioBoard::new(1.0);
        b.publish(0, 0.2);
        b.publish(1, 0.8);
        assert_eq!(b.cap(), Some(0.2));
        b.retire(0);
        assert_eq!(b.cap(), Some(0.8));
    }

    #[test]
    fn republish_overwrites() {
        let b = RatioBoard::new(1.0);
        b.publish(0, 0.2);
        b.publish(0, 0.9);
        assert_eq!(b.cap(), Some(0.9));
    }

    #[test]
    fn disabled_board_returns_none() {
        let b = RatioBoard::disabled();
        b.publish(0, 0.1);
        assert_eq!(b.cap(), None);
        assert!(!b.is_enabled());
    }

    #[test]
    fn non_finite_publishes_ignored() {
        let b = RatioBoard::new(1.0);
        b.publish(0, f32::NAN);
        b.publish(1, f32::INFINITY);
        assert_eq!(b.cap(), Some(1.0), "garbage must not poison the cap");
        assert_eq!(b.group_size(), 0);
    }

    #[test]
    fn theorem2_bound_zero_at_rho_one() {
        // ln(1) = 0: truncating at ρ=1 guarantees no reward regression.
        assert_eq!(reward_improvement_bound(0.99, 1.0, 1.0), 0.0);
    }

    #[test]
    fn theorem2_bound_grows_with_rho_and_gamma() {
        let b1 = reward_improvement_bound(0.9, 1.0, 1.2);
        let b2 = reward_improvement_bound(0.9, 1.0, 2.0);
        assert!(b2 > b1);
        let g1 = reward_improvement_bound(0.5, 1.0, 1.5);
        let g2 = reward_improvement_bound(0.95, 1.0, 1.5);
        assert!(g2 > g1, "looser discount amplifies the bound");
    }

    proptest! {
        #[test]
        fn prop_cap_bounded_by_rho_and_min(
            ratios in proptest::collection::vec(0.01f32..10.0, 1..16),
            rho in 0.5f32..2.0,
        ) {
            let b = RatioBoard::new(rho);
            for (i, &r) in ratios.iter().enumerate() {
                b.publish(i, r);
            }
            let cap = b.cap().unwrap();
            let min = ratios.iter().cloned().fold(f32::INFINITY, f32::min);
            prop_assert!(cap <= rho + 1e-6);
            prop_assert!(cap <= min + 1e-6);
            prop_assert!((cap - min.min(rho)).abs() < 1e-6);
        }
    }
}
