//! Dynamic learner orchestration (§II-D / §V-B): "multi-learner allocation
//! should be scalable and dynamic to achieve efficient learning for
//! serverless DRL training."
//!
//! The autoscaler sizes the active learner pool from the staged-batch
//! backlog: enough learners that each has a couple of mini-batches queued,
//! never more than the GPU slots allow. Scaling down releases GPU slots
//! (raising utilisation, Fig. 3a's right axis); scaling up cuts learning
//! time at high actor counts (the left axis).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Backlog-driven learner-pool autoscaler.
#[derive(Debug)]
pub struct LearnerAutoscaler {
    min: usize,
    max: usize,
    /// Target staged mini-batches per active learner.
    pub backlog_per_learner: usize,
    active: AtomicUsize,
    decisions: AtomicU64,
}

impl LearnerAutoscaler {
    /// Creates an autoscaler bounded to `[min, max]` active learners.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(
            min >= 1 && min <= max,
            "invalid autoscaler bounds {min}..{max}"
        );
        Self {
            min,
            max,
            backlog_per_learner: 2,
            active: AtomicUsize::new(min),
            decisions: AtomicU64::new(0),
        }
    }

    /// A disabled autoscaler pinned to `n` learners.
    pub fn pinned(n: usize) -> Self {
        Self::new(n.max(1), n.max(1))
    }

    /// The size the pool *should* be for a given backlog.
    pub fn decide(&self, backlog: usize) -> usize {
        let want = backlog.div_ceil(self.backlog_per_learner.max(1));
        want.clamp(self.min, self.max)
    }

    /// Observes the current backlog and rescales; returns the new size.
    pub fn observe(&self, backlog: usize) -> usize {
        let next = self.decide(backlog);
        self.active.store(next, Ordering::Release);
        self.decisions.fetch_add(1, Ordering::Relaxed);
        next
    }

    /// Currently allowed pool size.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Whether worker `id` may pull work right now.
    pub fn admits(&self, id: usize) -> bool {
        id < self.active()
    }

    /// Number of scaling decisions taken.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scales_with_backlog() {
        let a = LearnerAutoscaler::new(1, 8);
        assert_eq!(a.decide(0), 1);
        assert_eq!(a.decide(1), 1);
        assert_eq!(a.decide(4), 2);
        assert_eq!(a.decide(16), 8);
        assert_eq!(a.decide(1000), 8, "clamped to GPU slots");
    }

    #[test]
    fn observe_updates_admission() {
        let a = LearnerAutoscaler::new(1, 4);
        assert!(a.admits(0));
        assert!(!a.admits(1));
        a.observe(8);
        assert_eq!(a.active(), 4);
        assert!(a.admits(3));
        a.observe(0);
        assert_eq!(a.active(), 1);
        assert!(!a.admits(1));
        assert_eq!(a.decisions(), 2);
    }

    #[test]
    fn pinned_never_moves() {
        let a = LearnerAutoscaler::pinned(3);
        a.observe(0);
        assert_eq!(a.active(), 3);
        a.observe(1000);
        assert_eq!(a.active(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid autoscaler bounds")]
    fn rejects_inverted_bounds() {
        let _ = LearnerAutoscaler::new(5, 2);
    }

    proptest! {
        #[test]
        fn prop_decision_always_in_bounds(
            min in 1usize..4,
            extra in 0usize..8,
            backlog in 0usize..10_000,
        ) {
            let a = LearnerAutoscaler::new(min, min + extra);
            let d = a.decide(backlog);
            prop_assert!(d >= min && d <= min + extra);
        }

        #[test]
        fn prop_monotone_in_backlog(b1 in 0usize..500, b2 in 0usize..500) {
            let a = LearnerAutoscaler::new(1, 16);
            let (lo, hi) = (b1.min(b2), b1.max(b2));
            prop_assert!(a.decide(lo) <= a.decide(hi));
        }
    }
}
