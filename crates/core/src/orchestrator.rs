//! The Stellaris training orchestrator (Fig. 4's workflow).
//!
//! The asynchronous path wires real threads through the distributed cache:
//! actor threads pull the latest policy and publish trajectory batches
//! (Step ①); a GPU data-loader thread stages GAE-processed mini-batches and
//! exports pointers (`Arc<SampleBatch>`) into the work queue (§V-B); learner
//! workers are invoked through the serverless platform, compute gradients
//! with the global IS-truncation cap and submit them to the cache (Step ②);
//! the parameter thread performs staleness-aware aggregation and publishes
//! each new policy snapshot (Step ③). Staleness is therefore *emergent*
//! from genuine thread racing, not scripted.
//!
//! The synchronous path implements the serverful baselines (RLlib-style
//! multi-learner data parallelism, single-learner MinionsRL) with the same
//! components in lockstep.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use stellaris_cache::{BlockingQueue, Cache, LatencyModel, ShardedGradientQueue};
use stellaris_envs::make_env;
use stellaris_nn::Tensor;
use stellaris_rl::{
    evaluate, fill_gae, impact_gradients, impala_gradients, ppo_gradients, ImpactLearner,
    PolicyNet, PolicySnapshot, PolicySpec, RolloutWorker, SampleBatch,
};
use stellaris_serverless::{
    bill_hybrid, bill_serverful, bill_serverless, CostBreakdown, FaultPlan, FaultReport,
    FunctionKind, OverheadMode, Platform, StartupProfile,
};
use stellaris_telemetry as telemetry;

use crate::aggregation::{AggregationRule, SspThrottle};
use crate::autoscale::LearnerAutoscaler;
use crate::config::{Algo, Deployment, LearnerMode, TrainConfig};
use crate::messages::GradientMsg;
use crate::metrics::{Component, TimerReport, Timers, TrainRow};
use crate::parameter::{ParameterServer, ShardedParameterServer};
use crate::transport::{Placement, Router};
use crate::truncation::RatioBoard;

/// Cache key under which the canonical policy snapshot is published.
pub const POLICY_KEY: &str = "policy:latest";

/// Reads the published policy snapshot, mapping a missing or corrupt frame
/// (fault injection can corrupt stored bytes) to `None` so callers degrade
/// the wave instead of panicking mid-round.
fn read_snapshot(cache: &Cache) -> Option<PolicySnapshot> {
    cache.get_obj(POLICY_KEY).ok()
}

/// Everything a finished training job reports.
#[derive(Clone, Debug)]
pub struct TrainResult {
    /// Per-round metric rows.
    pub rows: Vec<TrainRow>,
    /// Staleness of every aggregated gradient (Fig. 3b data).
    pub staleness_log: Vec<u64>,
    /// Component timers (Fig. 14 data).
    pub timers: TimerReport,
    /// Final evaluation reward.
    pub final_reward: f32,
    /// Total cost in USD under the configured billing model.
    pub cost: CostBreakdown,
    /// Total wall-clock seconds.
    pub wall_time_s: f64,
    /// Total learner-function invocations.
    pub learner_invocations: u64,
    /// Total policy updates.
    pub policy_updates: u64,
    /// GPU-slot utilisation over the run (Fig. 3a data).
    pub gpu_utilization: f64,
    /// Cold starts paid.
    pub cold_starts: u64,
    /// Configuration label.
    pub label: String,
    /// The final trained policy weights (loadable via
    /// `PolicyNet::load_snapshot` into an architecture-compatible net).
    pub final_snapshot: stellaris_rl::PolicySnapshot,
    /// Gradients actually folded into the policy (each contributes one
    /// `staleness_log` entry).
    pub grads_aggregated: u64,
    /// Rounds in which at least one invocation or transfer exhausted its
    /// retries and the round proceeded with fewer gradients (the quorum
    /// degradation path).
    pub degraded_rounds: u64,
    /// Platform slots not returned by the end of the run. Must be zero:
    /// anything else means a permit leaked through a failure path.
    pub slots_leaked: u64,
    /// Everything the fault plan injected and every retry it observed.
    pub faults: FaultReport,
}

impl TrainResult {
    /// Mean reward over the last `n` rounds (stable "final reward" metric).
    pub fn final_reward_mean(&self, n: usize) -> f32 {
        let tail = &self.rows[self.rows.len().saturating_sub(n)..];
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().map(|r| r.reward).sum::<f32>() / tail.len() as f32
        }
    }

    /// Largest observed gradient staleness, `0` when nothing was aggregated
    /// (degenerate configs with zero policy updates must not panic here).
    pub fn max_staleness(&self) -> u64 {
        self.staleness_log.iter().max().copied().unwrap_or(0)
    }
}

pub(crate) fn build_policy(cfg: &TrainConfig) -> PolicyNet {
    let mut env = make_env(cfg.env_id, cfg.env_cfg);
    env.reset(cfg.seed);
    let mut spec = PolicySpec::for_env(env.as_ref());
    spec.hidden = cfg.hidden;
    PolicyNet::new(spec, cfg.seed)
}

/// The canonical starting policy: fresh weights, or the configured resume
/// snapshot loaded on top (workers still start from `build_policy` and pull
/// the canonical weights through the cache on their first cycle).
fn initial_policy(cfg: &TrainConfig) -> PolicyNet {
    let mut policy = build_policy(cfg);
    if let Some(snap) = &cfg.initial_snapshot {
        use stellaris_nn::ParamSet;
        assert_eq!(
            snap.flat.len(),
            policy.num_scalars(),
            "resume snapshot does not match this config's architecture"
        );
        policy.load_snapshot(snap);
    }
    policy
}

/// One learner-function body: load the snapshot, run the configured
/// algorithm's gradient pass, wrap the result as a [`GradientMsg`]. Shared
/// by the in-process learner threads and the remote worker loop
/// (`remote::serve_worker`), so both sides of a socket compute identically.
pub(crate) fn learner_compute(
    algo: &Algo,
    policy: &mut PolicyNet,
    impact_state: &mut Option<ImpactLearner>,
    snap: &PolicySnapshot,
    batch: &SampleBatch,
    cap: Option<f32>,
    learner_id: usize,
) -> GradientMsg {
    policy.load_snapshot(snap);
    let (grads, stats) = match algo {
        Algo::Ppo(pc) => ppo_gradients(policy, batch, pc, cap),
        Algo::Impala(ic) => impala_gradients(policy, batch, ic, cap),
        Algo::Impact(ic) => {
            let state = impact_state.get_or_insert_with(|| ImpactLearner::new(policy));
            let target = state.target_net(policy);
            let out = impact_gradients(policy, &target, batch, ic, cap);
            state.maybe_refresh(policy, ic);
            out
        }
    };
    GradientMsg {
        learner_id,
        grads,
        base_version: snap.version,
        batch_len: batch.len(),
        is_ratio: stats.mean_ratio,
        kl: stats.kl,
        surrogate: stats.surrogate,
    }
}

/// Runs a training job, dispatching on the learner topology.
pub fn train(cfg: &TrainConfig) -> TrainResult {
    match &cfg.learner_mode {
        LearnerMode::Async { rule } => train_async(cfg, rule.clone()),
        LearnerMode::Sync { n } => train_sync(cfg, *n),
        LearnerMode::Single => train_sync(cfg, 1),
    }
}

// ---------------------------------------------------------------------------
// Asynchronous path (Stellaris and the Fig. 11a ablation baselines)
// ---------------------------------------------------------------------------

fn train_async(cfg: &TrainConfig, rule: AggregationRule) -> TrainResult {
    let start = Instant::now();
    let cache = Arc::new(Cache::new(16, LatencyModel::lan_recorded()));
    let faults = Arc::new(FaultPlan::new(cfg.faults.clone()));
    let platform = Arc::new(
        Platform::new(
            cfg.max_learners,
            cfg.n_actors,
            StartupProfile::default(),
            OverheadMode::Record,
        )
        .with_faults(faults.clone()),
    );
    let router = Arc::new(Router::with_faults(cache.clone(), faults));
    platform.prewarm(FunctionKind::Learner, cfg.max_learners);
    platform.prewarm(FunctionKind::Actor, cfg.n_actors);

    let policy0 = initial_policy(cfg);
    // DESIGN.md §16: the parameter plane is sharded by parameter block.
    // `param_shards = 1` (every preset's default) collapses to a single
    // shard whose aggregation is bit-for-bit identical to the classic
    // `ParameterServer` — the regression test in `parameter.rs` pins this.
    let server = Arc::new(ShardedParameterServer::new(
        policy0.clone(),
        rule.clone(),
        cfg.param_shards,
        || cfg.optimizer.build(cfg.algo.lr()),
    ));
    // Snapshot first: `put_obj` locks cache shards, which must never happen
    // while a parameter-shard guard is live.
    let snapshot0 = server.snapshot();
    cache.put_obj(POLICY_KEY, &snapshot0);

    let board = Arc::new(match cfg.truncation_rho {
        Some(rho) => RatioBoard::new(rho),
        None => RatioBoard::disabled(),
    });
    let throttle = rule.ssp_bound().map(|b| Arc::new(SspThrottle::new(b)));
    let autoscaler = Arc::new(if cfg.dynamic_learners {
        LearnerAutoscaler::new(1, cfg.max_learners.max(1))
    } else {
        LearnerAutoscaler::pinned(cfg.max_learners.max(1))
    });

    // bound: refilled once per round, ≤ one batch per actor invocation.
    let traj_q: Arc<BlockingQueue<SampleBatch>> = Arc::new(BlockingQueue::new());
    // bound: mirrors traj_q one-to-one within a round.
    let work_q: Arc<BlockingQueue<Arc<SampleBatch>>> = Arc::new(BlockingQueue::new());
    // Generous cap: learners produce at most one gradient apiece per round
    // and the aggregator drains every round, so the shed path only fires if
    // a consumer wedges — in which case dropping the *oldest* (stalest)
    // gradient is exactly what the staleness-aware rule would discount
    // anyway. Under normal operation no payload is ever shed, so bounding
    // the queue does not perturb same-seed reproducibility.
    let grad_cap = 8 * cfg.max_learners.max(8);
    // Learners hash into `grad_lanes` independent bounded MPSC lanes so a
    // 10k-learner fan-in never serialises on one queue lock; one lane (the
    // default) is exactly the classic single bounded queue.
    let grad_q: Arc<ShardedGradientQueue<String>> =
        Arc::new(ShardedGradientQueue::bounded(cfg.grad_lanes, grad_cap));
    let stop = Arc::new(AtomicBool::new(false));
    let steps = Arc::new(AtomicU64::new(0));
    // Actors sample up to the current round's data budget and then idle,
    // so every topology consumes the same number of timesteps per round
    // (the paper fixes the per-round trajectory volume across baselines).
    // `sample_claims` hands out quota atomically so racing actors cannot
    // overshoot the budget.
    let astep = cfg.actor_steps as u64;
    // At least one actor batch per round: a quota of zero would let every
    // round "complete" without sampling anything.
    let round_quota = (cfg.round_timesteps as u64 / astep).max(1) * astep;
    let sample_target = Arc::new(AtomicU64::new(round_quota));
    let sample_claims = Arc::new(AtomicU64::new(0));
    let episodes = Arc::new(AtomicU64::new(0));
    // Retry-exhausted invocations/transfers: each one means some work was
    // permanently lost and the round degraded to a quorum of what arrived.
    let degraded_events = Arc::new(AtomicU64::new(0));
    let mut degraded_rounds = 0u64;
    let mut prev_degraded = 0u64;
    let timers = Arc::new(Timers::default());
    let active_actors = Arc::new(AtomicUsize::new(if cfg.dynamic_actors {
        (cfg.n_actors / 2).max(1)
    } else {
        cfg.n_actors
    }));
    let probe_obs: Arc<Mutex<Option<Tensor>>> = Arc::new(Mutex::new(None));

    let mut rows = Vec::with_capacity(cfg.rounds);
    let gamma = cfg.algo.gamma();
    let lambda = match &cfg.algo {
        Algo::Ppo(p) => p.gae_lambda,
        Algo::Impact(_) | Algo::Impala(_) => 0.95,
    };

    crossbeam::thread::scope(|s| {
        // ----- actors (Step ①) -------------------------------------------------
        for a in 0..cfg.n_actors {
            let cache = cache.clone();
            let platform = platform.clone();
            let traj_q = traj_q.clone();
            let stop = stop.clone();
            let steps = steps.clone();
            let episodes = episodes.clone();
            let timers = timers.clone();
            let active = active_actors.clone();
            let probe = probe_obs.clone();
            let target_steps = sample_target.clone();
            let claims = sample_claims.clone();
            let degraded = degraded_events.clone();
            let serverless_actor = cfg.deployment != Deployment::Serverful;
            let cfg = cfg.clone();
            s.spawn(move |_| {
                let mut worker = RolloutWorker::new(
                    make_env(cfg.env_id, cfg.env_cfg),
                    cfg.seed.wrapping_mul(1000).wrapping_add(a as u64),
                );
                let mut local = build_policy(&cfg);
                while !stop.load(Ordering::Acquire) {
                    if a >= active.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    // Claim one collect's worth of this round's quota.
                    let claimed = claims.fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                        (c + cfg.actor_steps as u64 <= target_steps.load(Ordering::Acquire))
                            .then_some(c + cfg.actor_steps as u64)
                    });
                    if claimed.is_err() {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    if let Ok(snap) = cache.get_obj::<PolicySnapshot>(POLICY_KEY) {
                        local.load_snapshot(&snap);
                    }
                    let mut collect = || {
                        let _t = timers.span(Component::ActorSampling);
                        worker.collect(&local, cfg.actor_steps)
                    };
                    let batch = if serverless_actor {
                        match platform.invoke_retry(
                            FunctionKind::Actor,
                            &cfg.retry,
                            cfg.invoke_deadline,
                            &mut collect,
                        ) {
                            Ok((batch, _rec)) => batch,
                            Err(_) => {
                                // Refund the claimed quota so the round's
                                // data budget can still be met by a later
                                // attempt (here or on another actor).
                                claims.fetch_sub(cfg.actor_steps as u64, Ordering::AcqRel);
                                degraded.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    } else {
                        collect()
                    };
                    {
                        let mut p = probe.lock();
                        if p.is_none() {
                            *p = Some(batch.obs.clone());
                        }
                    }
                    steps.fetch_add(batch.len() as u64, Ordering::Release);
                    episodes.fetch_add(batch.episode_returns.len() as u64, Ordering::Relaxed);
                    traj_q.push(batch);
                }
            });
        }

        // ----- GPU data loader (§V-B) ------------------------------------------
        {
            let traj_q = traj_q.clone();
            let work_q = work_q.clone();
            let timers = timers.clone();
            let minibatch = cfg.minibatch;
            s.spawn(move |_| {
                while let Some(mut batch) = traj_q.pop() {
                    let _t = timers.span(Component::DataLoading);
                    fill_gae(&mut batch, gamma, lambda);
                    batch.normalize_advantages();
                    for mb in batch.minibatches(minibatch) {
                        // Staging in "GPU memory": the Arc is the exported
                        // pointer learners dereference without copying.
                        work_q.push(Arc::new(mb));
                    }
                }
                work_q.close();
            });
        }

        // ----- learner workers (Step ②) ----------------------------------------
        for l in 0..cfg.max_learners {
            let cache = cache.clone();
            let platform = platform.clone();
            let router = router.clone();
            let work_q = work_q.clone();
            let grad_q = grad_q.clone();
            let board = board.clone();
            let throttle = throttle.clone();
            let timers = timers.clone();
            let server = server.clone();
            let autoscaler = autoscaler.clone();
            let degraded = degraded_events.clone();
            let cfg = cfg.clone();
            s.spawn(move |_| {
                let mut local = build_policy(&cfg);
                let mut impact_state: Option<ImpactLearner> = None;
                loop {
                    // Dynamic learner orchestration: workers beyond the
                    // autoscaler's current pool size idle without holding
                    // GPU slots.
                    if !autoscaler.admits(l) {
                        if work_q.is_closed() && work_q.is_empty() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    autoscaler.observe(work_q.len());
                    let Some(mb) = work_q.pop_timeout(Duration::from_millis(20)) else {
                        if work_q.is_closed() && work_q.is_empty() {
                            break;
                        }
                        continue;
                    };
                    let token = throttle.as_ref().map(|t| t.begin(server.clock()));
                    // A retried invocation re-reads the *current* snapshot,
                    // so a straggler's re-execution carries fresh
                    // `base_version` — its residual staleness is exactly
                    // what the Eq. 3 threshold and Eq. 4 weight absorb.
                    let mut compute = || {
                        let _t = timers.span(Component::Gradient);
                        // An unreadable snapshot degrades this learner's
                        // wave instead of panicking the worker thread.
                        let snap = read_snapshot(&cache)?;
                        let cap = board.cap();
                        let msg = learner_compute(
                            &cfg.algo,
                            &mut local,
                            &mut impact_state,
                            &snap,
                            &mb,
                            cap,
                            l,
                        );
                        board.publish(l, msg.is_ratio);
                        Some(msg)
                    };
                    let out = platform.invoke_retry(
                        FunctionKind::Learner,
                        &cfg.retry,
                        cfg.invoke_deadline,
                        &mut compute,
                    );
                    if let (Some(th), Some(t)) = (&throttle, token) {
                        th.end(t);
                    }
                    let msg = match out {
                        Ok((Some(msg), _rec)) => msg,
                        Ok((None, _)) | Err(_) => {
                            // Gradient permanently lost (retries exhausted)
                            // or the snapshot was unreadable: the round
                            // proceeds with whatever the other learners
                            // deliver.
                            degraded.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let base_version = msg.base_version;
                    let sent = {
                        let _t = timers.span(Component::Cache);
                        let key = format!("grad:{}", cache.incr("grad_seq"));
                        // Gradient submission crosses VMs (learner -> the
                        // parameter function's host) and is subject to
                        // frame drop/corruption with retry.
                        router
                            .send_with_retry(
                                Arc::new(msg),
                                Placement { vm: 1 + l },
                                Placement { vm: 0 },
                                false,
                                &key,
                                &cfg.retry,
                            )
                            .ok()
                            .map(|(_tier, delivered)| {
                                cache.put_obj(&key, delivered.get());
                                key
                            })
                    };
                    match sent {
                        // Lane choice is keyed by learner id: a learner
                        // always lands on the same lane and never touches
                        // a global queue lock.
                        Some(key) => grad_q.push(l as u64, key, base_version),
                        None => {
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // ----- parameter function (Step ③) -------------------------------------
        {
            let cache = cache.clone();
            let grad_q = grad_q.clone();
            let server = server.clone();
            let timers = timers.clone();
            s.spawn(move |_| {
                while let Some((key, _base_version)) = grad_q.pop_any() {
                    let _t = timers.span(Component::Aggregation);
                    let Ok(msg) = cache.take_obj::<GradientMsg>(&key) else {
                        continue;
                    };
                    let applied = server.offer(msg);
                    let clock = server.clock();
                    if applied > 0 {
                        let snap = server.snapshot();
                        cache.put_obj(POLICY_KEY, &snap);
                    }
                    // Publish the aggregation clock so dequeues can histogram
                    // each gradient's staleness at consumption time.
                    grad_q.advance_clock(clock);
                }
            });
        }

        // ----- round control + evaluation ---------------------------------------
        let mut eval_env = make_env(cfg.env_id, cfg.env_cfg);
        let mut eval_policy = build_policy(cfg);
        let mut prev_policy = build_policy(cfg);
        let mut prev_updates = 0u64;
        let mut prev_invocations = 0u64;
        let mut prev_episodes = 0u64;
        let mut prev_staleness_len = 0u64;
        let mut last_round_end = Instant::now();
        let mut last_reward = f32::NEG_INFINITY;

        let rounds_total = telemetry::global().counter("stellaris_core_rounds_total");
        let depth_gauge = telemetry::global().gauge("stellaris_core_work_queue_depth");
        let degraded_gauge = telemetry::global().gauge("stellaris_core_degraded_rounds");
        for round in 0..cfg.rounds {
            let mut round_span = telemetry::span_with("core.round", vec![("round", round.into())]);
            let target = (round as u64 + 1) * round_quota;
            sample_target.store(target, Ordering::Release);
            let deadline = Instant::now() + Duration::from_secs(120);
            {
                let _wait = telemetry::span("core.round_wait");
                while steps.load(Ordering::Acquire) < target && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            depth_gauge.set(work_q.len() as f64);
            // Evaluate the current canonical policy.
            if let Ok(snap) = cache.get_obj::<PolicySnapshot>(POLICY_KEY) {
                eval_policy.load_snapshot(&snap);
            }
            let reward = {
                let _eval = telemetry::span("core.eval");
                evaluate(
                    &eval_policy,
                    eval_env.as_mut(),
                    cfg.eval_episodes,
                    cfg.seed ^ 0xe7a1,
                )
            };
            let policy_kl = probe_obs
                .lock()
                .as_ref()
                .map(|obs| prev_policy.mean_kl_to(&eval_policy, obs))
                .unwrap_or(0.0);
            prev_policy.load_snapshot(&eval_policy.snapshot());

            // MinionsRL-style dynamic actor scaling.
            if cfg.dynamic_actors {
                let cur = active_actors.load(Ordering::Acquire);
                let next = if reward > last_reward {
                    (cur + 2).min(cfg.n_actors)
                } else {
                    cur.saturating_sub(1).max(1)
                };
                active_actors.store(next, Ordering::Release);
            }
            last_reward = reward;

            let (updates, staleness_len, mean_staleness) = {
                server.advance_round();
                let recorded = server.staleness_log().recorded();
                let new = (recorded - prev_staleness_len) as usize;
                let mean = server.mean_recent_staleness(new.max(1));
                (server.updates(), recorded, mean)
            };
            let records = platform.records();
            let invocations = records
                .iter()
                .filter(|r| r.kind == FunctionKind::Learner)
                .count() as u64;
            let cost = cost_for(cfg, &platform, start.elapsed());
            let now = Instant::now();
            rows.push(TrainRow {
                round,
                wall_time_s: start.elapsed().as_secs_f64(),
                round_duration_s: (now - last_round_end).as_secs_f64(),
                learner_invocations: invocations - prev_invocations,
                episodes: episodes.load(Ordering::Relaxed) - prev_episodes,
                reward,
                mean_staleness,
                cost_usd: cost.total(),
                learner_cost_usd: cost.learner_usd,
                actor_cost_usd: cost.actor_usd,
                policy_updates: updates - prev_updates,
                policy_kl,
            });
            last_round_end = now;
            prev_updates = updates;
            prev_invocations = invocations;
            prev_episodes = episodes.load(Ordering::Relaxed);
            prev_staleness_len = staleness_len;
            let deg_now = degraded_events.load(Ordering::Relaxed);
            if deg_now > prev_degraded {
                degraded_rounds += 1;
                round_span.field("degraded", true);
                telemetry::recorder::note_degraded_round();
            }
            prev_degraded = deg_now;
            degraded_gauge.set(degraded_rounds as f64);
            round_span.field("reward", f64::from(reward));
            round_span.field("mean_staleness", mean_staleness);
            rounds_total.inc();
        }

        // ----- shutdown ---------------------------------------------------------
        stop.store(true, Ordering::Release);
        traj_q.close();
        // work_q is NOT closed here: the data loader closes it after
        // draining traj_q, so minibatches staged during shutdown still
        // reach the learners instead of being dropped by a closed queue.
        grad_q.close();
    })
    // lint:allow(A8): deliberate re-panic — a child thread died and the run cannot continue
    // lint:allow(L1): re-raising a child thread's panic is the intended failure path
    .expect("orchestrator thread panicked");

    // Learner/cache threads outlive the round loop's last bookkeeping pass;
    // losses they report between that check and shutdown still degraded the
    // final round.
    if degraded_events.load(Ordering::Relaxed) > prev_degraded && cfg.rounds > 0 {
        degraded_rounds += 1;
    }

    // Copy what finalize needs out of the server before it touches the
    // platform: each accessor takes and releases its shard guard, so no
    // server lock is ever held across `platform.records`.
    let server_final = ServerFinal {
        staleness_log: server.staleness_log().to_vec(),
        updates: server.updates(),
        grads_aggregated: server.grads_aggregated(),
        snapshot: server.snapshot(),
    };
    finalize(
        cfg,
        rows,
        server_final,
        &platform,
        &timers,
        start,
        degraded_rounds,
    )
}

// ---------------------------------------------------------------------------
// Synchronous path (serverful baselines and MinionsRL's single learner)
// ---------------------------------------------------------------------------

fn train_sync(cfg: &TrainConfig, n_learners: usize) -> TrainResult {
    let start = Instant::now();
    let cache = Arc::new(Cache::new(16, LatencyModel::lan_recorded()));
    let faults = Arc::new(FaultPlan::new(cfg.faults.clone()));
    let platform = Arc::new(
        Platform::new(
            n_learners.max(1),
            cfg.n_actors,
            StartupProfile::default(),
            OverheadMode::Record,
        )
        .with_faults(faults.clone()),
    );
    let router = Router::with_faults(cache.clone(), faults);
    platform.prewarm(FunctionKind::Learner, n_learners);
    platform.prewarm(FunctionKind::Actor, cfg.n_actors);
    let timers = Arc::new(Timers::default());

    let policy0 = initial_policy(cfg);
    let mut server = ParameterServer::new(
        policy0,
        cfg.optimizer.build(cfg.algo.lr()),
        AggregationRule::FullSync {
            n: n_learners.max(1),
        },
    );
    cache.put_obj(POLICY_KEY, &server.snapshot());

    let gamma = cfg.algo.gamma();
    let lambda = match &cfg.algo {
        Algo::Ppo(p) => p.gae_lambda,
        Algo::Impact(_) | Algo::Impala(_) => 0.95,
    };

    let mut workers: Vec<RolloutWorker> = (0..cfg.n_actors)
        .map(|a| {
            RolloutWorker::new(
                make_env(cfg.env_id, cfg.env_cfg),
                cfg.seed.wrapping_mul(1000).wrapping_add(a as u64),
            )
        })
        .collect();
    let mut eval_env = make_env(cfg.env_id, cfg.env_cfg);
    let mut eval_policy = build_policy(cfg);
    let mut prev_policy = build_policy(cfg);
    let mut probe_obs: Option<Tensor> = None;

    let mut rows = Vec::with_capacity(cfg.rounds);
    // IMPACT's target-network state persists across waves per learner slot
    // (a fresh target every invocation would degenerate the ratio to 1).
    let impact_states: Vec<Mutex<Option<ImpactLearner>>> =
        (0..n_learners.max(1)).map(|_| Mutex::new(None)).collect();
    let mut episodes_total = 0u64;
    let mut prev_invocations = 0u64;
    let mut prev_episodes = 0u64;
    let mut prev_updates = 0u64;
    let mut last_round_end = Instant::now();
    let collects_per_round = cfg.round_timesteps.div_ceil(cfg.n_actors * cfg.actor_steps);
    let mut degraded_events = 0u64;
    let mut prev_degraded = 0u64;
    let mut degraded_rounds = 0u64;

    let rounds_total = telemetry::global().counter("stellaris_core_rounds_total");
    let degraded_gauge = telemetry::global().gauge("stellaris_core_degraded_rounds");
    for round in 0..cfg.rounds {
        let mut round_span = telemetry::span_with("core.round", vec![("round", round.into())]);
        // Synchronous actor wave(s).
        let mut batches: Vec<SampleBatch> = Vec::new();
        for _ in 0..collects_per_round.max(1) {
            // An unreadable snapshot degrades the whole wave rather than
            // panicking the round loop.
            let Some(snap) = read_snapshot(&cache) else {
                degraded_events += workers.len() as u64;
                continue;
            };
            let serverless_actor = cfg.deployment != Deployment::Serverful;
            let n_spawned = workers.len();
            let wave: Vec<SampleBatch> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = workers
                    .iter_mut()
                    .map(|w| {
                        let platform = platform.clone();
                        let timers = timers.clone();
                        let snap = snap.clone();
                        let cfg2 = cfg.clone();
                        s.spawn(move |_| {
                            let mut local = build_policy(&cfg2);
                            local.load_snapshot(&snap);
                            let mut collect = || {
                                let _t = timers.span(Component::ActorSampling);
                                w.collect(&local, cfg2.actor_steps)
                            };
                            if serverless_actor {
                                platform
                                    .invoke_retry(
                                        FunctionKind::Actor,
                                        &cfg2.retry,
                                        cfg2.invoke_deadline,
                                        &mut collect,
                                    )
                                    .ok()
                                    .map(|(batch, _rec)| batch)
                            } else {
                                Some(collect())
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // lint:allow(A8): deliberate re-panic — propagates a child actor's panic
                    // lint:allow(L1): join() errs only if the actor panicked; propagate it
                    .filter_map(|h| h.join().unwrap())
                    .collect()
            })
            // lint:allow(A8): deliberate re-panic — propagates a child actor's panic
            // lint:allow(L1): re-raising a child thread's panic is the intended failure path
            .expect("actor wave panicked");
            // A degraded wave: some actors exhausted their retries, the
            // round trains on the trajectories that did arrive.
            degraded_events += (n_spawned - wave.len()) as u64;
            batches.extend(wave);
        }
        episodes_total += batches
            .iter()
            .map(|b| b.episode_returns.len() as u64)
            .sum::<u64>();
        if probe_obs.is_none() {
            probe_obs = batches.first().map(|b| b.obs.clone());
        }

        // Data loader: GAE + minibatching.
        let mut minibatches: Vec<SampleBatch> = Vec::new();
        {
            let _t = timers.span(Component::DataLoading);
            for mut b in batches {
                fill_gae(&mut b, gamma, lambda);
                b.normalize_advantages();
                minibatches.extend(b.minibatches(cfg.minibatch));
            }
        }

        // Synchronous data-parallel learner waves.
        let mut idx = 0;
        while idx < minibatches.len() {
            let wave: Vec<&SampleBatch> = minibatches
                [idx..(idx + n_learners.max(1)).min(minibatches.len())]
                .iter()
                .collect();
            idx += wave.len();
            let snap = server.snapshot();
            let wave_size = wave.len();
            // No barrier here: a barrier sized to the wave deadlocks the
            // moment one member exhausts its retries and never arrives.
            // Each learner instead reports its finish instant, and the
            // synchronous hold — a learner function keeps its slot (and its
            // bill running) while it waits for the wave's stragglers, the
            // economic cost of synchrony the paper's Fig. 2(b)/8 expose —
            // is billed after the join from `wave_end - finish`.
            let results: Vec<Option<(GradientMsg, Instant)>> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = wave
                    .into_iter()
                    .enumerate()
                    .map(|(l, mb)| {
                        let platform = platform.clone();
                        let timers = timers.clone();
                        let snap = snap.clone();
                        let cfg2 = cfg.clone();
                        let impact_slot = &impact_states[l];
                        s.spawn(move |_| {
                            let mut compute = || {
                                let _t = timers.span(Component::Gradient);
                                let mut local = build_policy(&cfg2);
                                let mut impact_state = impact_slot.lock().take();
                                let msg = learner_compute(
                                    &cfg2.algo,
                                    &mut local,
                                    &mut impact_state,
                                    &snap,
                                    mb,
                                    None,
                                    l,
                                );
                                *impact_slot.lock() = impact_state;
                                msg
                            };
                            platform
                                .invoke_retry(
                                    FunctionKind::Learner,
                                    &cfg2.retry,
                                    cfg2.invoke_deadline,
                                    &mut compute,
                                )
                                .ok()
                                .map(|(msg, _rec)| (msg, Instant::now()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // lint:allow(A8): deliberate re-panic — propagates a child learner's panic
                    // lint:allow(L1): join() errs only if the learner panicked; propagate it
                    .map(|h| h.join().unwrap())
                    .collect()
            })
            // lint:allow(A8): deliberate re-panic — propagates a child learner's panic
            // lint:allow(L1): re-raising a child thread's panic is the intended failure path
            .expect("learner wave panicked");
            if let Some(wave_end) = results.iter().flatten().map(|(_, t)| *t).max() {
                for (_, finish) in results.iter().flatten() {
                    platform.bill_hold(FunctionKind::Learner, wave_end - *finish);
                }
            }
            // Gradient submission crosses to the aggregator's VM with
            // drop/corruption + retry; a lost gradient shrinks the wave.
            let msgs: Vec<GradientMsg> = results
                .into_iter()
                .flatten()
                .filter_map(|(m, _)| {
                    let key = format!("grad:sync:{round}:{}", m.learner_id);
                    let src = Placement {
                        vm: 1 + m.learner_id,
                    };
                    router
                        .send_with_retry(
                            Arc::new(m),
                            src,
                            Placement { vm: 0 },
                            false,
                            &key,
                            &cfg.retry,
                        )
                        .ok()
                        .map(|(_tier, d)| d.into_owned())
                })
                .collect();
            let _agg = timers.span(Component::Aggregation);
            let wave_n = msgs.len();
            degraded_events += (wave_size - wave_n) as u64;
            if wave_n == 0 {
                // Quorum of zero: every gradient in the wave was lost.
                // Skip the update entirely rather than stalling.
            } else if wave_n < n_learners.max(1) {
                // Degraded or last partial wave: temporarily lower the
                // sync quorum to the gradients that actually arrived.
                let mut tmp = ParameterServer::new(
                    server.policy.clone(),
                    cfg.optimizer.build(cfg.algo.lr()),
                    AggregationRule::FullSync { n: wave_n },
                );
                tmp.policy.version = server.policy.version;
                for m in msgs {
                    tmp.offer(m);
                }
                let snap = tmp.snapshot();
                server.policy.load_snapshot(&snap);
                server.updates += 1;
                server.grads_aggregated += tmp.grads_aggregated;
                server
                    .staleness_log
                    .extend(tmp.staleness_log.iter().copied());
            } else {
                for m in msgs {
                    server.offer(m);
                }
            }
            cache.put_obj(POLICY_KEY, &server.snapshot());
        }

        // Evaluation + metrics.
        eval_policy.load_snapshot(&server.snapshot());
        let reward = {
            let _eval = telemetry::span("core.eval");
            evaluate(
                &eval_policy,
                eval_env.as_mut(),
                cfg.eval_episodes,
                cfg.seed ^ 0xe7a1,
            )
        };
        let policy_kl = probe_obs
            .as_ref()
            .map(|obs| prev_policy.mean_kl_to(&eval_policy, obs))
            .unwrap_or(0.0);
        prev_policy.load_snapshot(&eval_policy.snapshot());
        server.advance_round();

        let records = platform.records();
        let invocations = records
            .iter()
            .filter(|r| r.kind == FunctionKind::Learner)
            .count() as u64;
        let cost = cost_for(cfg, &platform, start.elapsed());
        let now = Instant::now();
        rows.push(TrainRow {
            round,
            wall_time_s: start.elapsed().as_secs_f64(),
            round_duration_s: (now - last_round_end).as_secs_f64(),
            learner_invocations: invocations - prev_invocations,
            episodes: episodes_total - prev_episodes,
            reward,
            mean_staleness: 0.0,
            cost_usd: cost.total(),
            learner_cost_usd: cost.learner_usd,
            actor_cost_usd: cost.actor_usd,
            policy_updates: server.updates - prev_updates,
            policy_kl,
        });
        last_round_end = now;
        prev_invocations = invocations;
        prev_episodes = episodes_total;
        prev_updates = server.updates;
        if degraded_events > prev_degraded {
            degraded_rounds += 1;
            round_span.field("degraded", true);
            telemetry::recorder::note_degraded_round();
        }
        prev_degraded = degraded_events;
        degraded_gauge.set(degraded_rounds as f64);
        round_span.field("reward", f64::from(reward));
        rounds_total.inc();
    }

    let server_final = ServerFinal {
        staleness_log: server.staleness_log.to_vec(),
        updates: server.updates,
        grads_aggregated: server.grads_aggregated,
        snapshot: server.snapshot(),
    };
    finalize(
        cfg,
        rows,
        server_final,
        &platform,
        &timers,
        start,
        degraded_rounds,
    )
}

fn cost_for(cfg: &TrainConfig, platform: &Platform, wall: Duration) -> CostBreakdown {
    let records = platform.records();
    match cfg.deployment {
        Deployment::Serverless => bill_serverless(&cfg.cluster, &records),
        Deployment::Serverful => bill_serverful(&cfg.cluster, wall),
        Deployment::Hybrid => {
            let actor_records: Vec<_> = records
                .iter()
                .copied()
                .filter(|r| r.kind == FunctionKind::Actor)
                .collect();
            bill_hybrid(&cfg.cluster, wall, &actor_records)
        }
    }
}

/// Values copied out of the parameter server before finalization, so no
/// server guard is held while `finalize` locks platform internals.
struct ServerFinal {
    staleness_log: Vec<u64>,
    updates: u64,
    grads_aggregated: u64,
    snapshot: PolicySnapshot,
}

fn finalize(
    cfg: &TrainConfig,
    rows: Vec<TrainRow>,
    server: ServerFinal,
    platform: &Platform,
    timers: &Timers,
    start: Instant,
    degraded_rounds: u64,
) -> TrainResult {
    let wall = start.elapsed();
    let mut timer_report = timers.report();
    // Startup overhead + cache latency from the substrates' own accounting.
    timer_report.startup_s = platform
        .records()
        .iter()
        .map(|r| r.startup.as_secs_f64())
        .sum();
    let (cold, _) = platform.start_counts();
    let final_reward = rows.last().map(|r| r.reward).unwrap_or(0.0);
    TrainResult {
        staleness_log: server.staleness_log.to_vec(),
        timers: timer_report,
        final_reward,
        cost: cost_for(cfg, platform, wall),
        wall_time_s: wall.as_secs_f64(),
        learner_invocations: platform
            .records()
            .iter()
            .filter(|r| r.kind == FunctionKind::Learner)
            .count() as u64,
        policy_updates: server.updates,
        gpu_utilization: platform.gpu_utilization(cfg.max_learners),
        cold_starts: cold,
        label: cfg.label(),
        final_snapshot: server.snapshot,
        grads_aggregated: server.grads_aggregated,
        degraded_rounds,
        slots_leaked: platform.leaked_slots(),
        faults: platform.faults().report(),
        rows,
    }
}

/// Smoothed reward curve: mean over a trailing window (used by figures).
pub fn smooth(rewards: &[f32], window: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(rewards.len());
    // bound: popped back down to `window` on every push below.
    let mut buf: VecDeque<f32> = VecDeque::new();
    for &r in rewards {
        buf.push_back(r);
        if buf.len() > window.max(1) {
            buf.pop_front();
        }
        out.push(buf.iter().sum::<f32>() / buf.len() as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_envs::EnvId;

    #[test]
    fn async_tiny_run_completes_with_sane_metrics() {
        let cfg = TrainConfig::test_tiny(EnvId::PointMass, 1);
        let res = train(&cfg);
        assert_eq!(res.rows.len(), 3);
        assert!(
            res.learner_invocations > 0,
            "learners must have been invoked"
        );
        assert!(res.policy_updates > 0, "policy must have been updated");
        assert!(res.final_reward.is_finite());
        assert!(res.cost.total() > 0.0);
        assert!(res.wall_time_s > 0.0);
        for row in &res.rows {
            assert!(row.reward.is_finite());
            assert!(row.cost_usd >= 0.0);
        }
        // Cumulative cost is nondecreasing.
        for w in res.rows.windows(2) {
            assert!(w[1].cost_usd >= w[0].cost_usd - 1e-12);
        }
    }

    #[test]
    fn sync_tiny_run_completes() {
        let mut cfg = TrainConfig::test_tiny(EnvId::ChainMdp, 2);
        cfg.learner_mode = LearnerMode::Sync { n: 2 };
        cfg.deployment = Deployment::Serverful;
        let res = train(&cfg);
        assert_eq!(res.rows.len(), 3);
        assert!(res.policy_updates > 0);
        assert_eq!(
            res.staleness_log.iter().max().copied().unwrap_or(0),
            0,
            "synchronous learners never see staleness"
        );
        assert!(
            res.cost.total() > 0.0,
            "serverful billing charges wall time"
        );
    }

    #[test]
    fn single_learner_mode_runs() {
        let mut cfg = TrainConfig::test_tiny(EnvId::PointMass, 3);
        cfg.learner_mode = LearnerMode::Single;
        let res = train(&cfg);
        assert!(res.policy_updates > 0);
    }

    #[test]
    fn async_staleness_emerges_with_multiple_learners() {
        let mut cfg = TrainConfig::test_tiny(EnvId::PointMass, 4);
        cfg.learner_mode = LearnerMode::Async {
            rule: AggregationRule::PureAsync,
        };
        cfg.max_learners = 4;
        cfg.rounds = 4;
        let res = train(&cfg);
        assert!(!res.staleness_log.is_empty());
        // With four racing learners some gradient should arrive stale.
        // (`max_staleness()` instead of `.max().unwrap()`: the latter
        // panicked on empty logs in degenerate zero-update configs.)
        let max_staleness = res.max_staleness();
        assert!(
            max_staleness >= 1,
            "expected some staleness, got {max_staleness}"
        );
    }

    #[test]
    fn unreadable_policy_snapshot_degrades_instead_of_panicking() {
        // Regression: both round loops used to `.expect()` the snapshot
        // read; a corrupt frame under POLICY_KEY panicked a worker thread
        // and took the whole run down with it.
        let cache = Cache::new(4, LatencyModel::off());
        assert!(read_snapshot(&cache).is_none(), "missing key degrades");
        cache.put(POLICY_KEY, bytes::Bytes::from_static(b"\xff\x00garbage"));
        assert!(read_snapshot(&cache).is_none(), "corrupt frame degrades");
        let cfg = TrainConfig::test_tiny(EnvId::PointMass, 11);
        let snap = initial_policy(&cfg).snapshot();
        cache.put_obj(POLICY_KEY, &snap);
        let got = read_snapshot(&cache).expect("valid snapshot must round-trip");
        assert_eq!(got.version, snap.version);
    }

    #[test]
    fn zero_update_run_reports_zero_staleness_without_panicking() {
        // Regression: a config whose learners all fail produces zero policy
        // updates and an empty staleness log. `max_staleness()` must report
        // 0 — the old `.max().copied().unwrap()` idiom panicked here.
        use stellaris_serverless::{FaultConfig, RetryPolicy};
        let mut cfg = TrainConfig::test_tiny(EnvId::ChainMdp, 7);
        cfg.rounds = 1;
        // Serverful actors bypass the platform, so trajectories still flow;
        // every learner invocation fails with no retry budget.
        cfg.deployment = Deployment::Serverful;
        cfg.faults = FaultConfig {
            seed: 7,
            invoke_failure: 1.0,
            ..FaultConfig::off()
        };
        cfg.retry = RetryPolicy::none();
        let res = train(&cfg);
        assert_eq!(res.policy_updates, 0, "all learners failed");
        assert!(res.staleness_log.is_empty());
        assert_eq!(res.max_staleness(), 0, "empty log must report 0, not panic");
        assert_eq!(res.grads_aggregated, 0);
        assert!(res.degraded_rounds >= 1, "the starved round is degraded");
        assert!(res.faults.injected_failures > 0);
        assert!(res.faults.exhausted > 0);
        assert_eq!(res.slots_leaked, 0);
        assert_eq!(res.rows.len(), 1, "the run still completes its round");
    }

    #[test]
    fn smooth_is_trailing_mean() {
        let s = smooth(&[1.0, 3.0, 5.0, 7.0], 2);
        assert_eq!(s, vec![1.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn dynamic_actors_run() {
        let mut cfg = TrainConfig::test_tiny(EnvId::PointMass, 5);
        cfg.dynamic_actors = true;
        cfg.n_actors = 3;
        let res = train(&cfg);
        assert_eq!(res.rows.len(), cfg.rounds);
    }
}
