//! Staleness control (§V-C): the adaptive threshold schedule of Eq. 3 and
//! the staleness-modulated learning rate of Eq. 4.
//!
//! A gradient's *staleness* δ is the number of policy updates that happened
//! between the version it was computed against and the clock at aggregation
//! time. Stellaris admits a queued batch of gradients only while the queue's
//! *average* staleness stays below a per-round threshold
//! `β_k = δ_max · d^k`, where `δ_max` is discovered by running the first
//! round unbounded. `d = 1` degenerates to pure asynchrony; `d → 0`
//! degenerates to synchronous training.

/// The adaptive staleness-threshold schedule of Eq. 3.
///
/// ```
/// use stellaris_core::StalenessSchedule;
/// let mut s = StalenessSchedule::new(0.5);
/// s.observe(8);            // calibration round discovers δ_max = 8
/// assert!(s.admits(1e9));  // round 0 is unbounded
/// s.advance_round();
/// assert_eq!(s.beta(), Some(4.0)); // β_1 = 8 · 0.5
/// assert!(!s.admits(5.0));
/// ```
#[derive(Clone, Debug)]
pub struct StalenessSchedule {
    /// Exponential decay factor `d ∈ (0, 1]`.
    pub d: f64,
    /// Maximum observed staleness during the unbounded first round.
    delta_max: Option<f64>,
    /// Current training round `k`.
    round: u64,
}

impl StalenessSchedule {
    /// Creates the schedule with decay factor `d` (paper default 0.96).
    pub fn new(d: f64) -> Self {
        assert!(
            d > 0.0 && d <= 1.0,
            "decay factor must be in (0, 1], got {d}"
        );
        Self {
            d,
            delta_max: None,
            round: 0,
        }
    }

    /// Feeds an observed staleness value; during round 0 this grows the
    /// `δ_max` estimate (the paper "temporarily disables the threshold at
    /// the first training round to obtain the maximum staleness").
    pub fn observe(&mut self, staleness: u64) {
        if self.round == 0 {
            // lint:allow(L4): u64 -> f64 is exact below 2^53; staleness counts policy updates
            let s = staleness as f64;
            self.delta_max = Some(self.delta_max.map_or(s, |m| m.max(s)));
        }
    }

    /// Current threshold `β_k`, or `None` while still calibrating (round 0).
    pub fn beta(&self) -> Option<f64> {
        if self.round == 0 {
            return None;
        }
        let dmax = self.delta_max.unwrap_or(0.0).max(1.0);
        // The previous `powi(self.round as i32)` *wrapped* for rounds past
        // i32::MAX, flipping β to dmax/d^huge = +inf.
        // lint:allow(L4): u64 -> f64 is exact below 2^53, merely imprecise above
        Some(dmax * self.d.powf(self.round as f64))
    }

    /// Advances to the next training round, tightening the threshold. The
    /// current `β_k` and calibrated `δ_max` are published as gauges
    /// (`stellaris_core_staleness_beta` / `..._delta_max`) so traces show
    /// the Eq. 3 schedule decaying.
    pub fn advance_round(&mut self) {
        self.advance_rounds(1);
    }

    /// Advances `n` rounds at once (a cheap skip for long-horizon schedules
    /// and tests), publishing the gauges once at the end.
    pub fn advance_rounds(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.round = self.round.saturating_add(n);
        let reg = stellaris_telemetry::global();
        if let Some(beta) = self.beta() {
            reg.gauge("stellaris_core_staleness_beta").set(beta);
        }
        if let Some(dmax) = self.delta_max {
            reg.gauge("stellaris_core_staleness_delta_max").set(dmax);
        }
    }

    /// Current round index.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The calibrated `δ_max`, if round 0 has produced one.
    pub fn delta_max(&self) -> Option<f64> {
        self.delta_max
    }

    /// Whether a queue with the given average staleness may aggregate now.
    pub fn admits(&self, avg_staleness: f64) -> bool {
        match self.beta() {
            None => true, // calibration round: unbounded
            Some(beta) => avg_staleness <= beta,
        }
    }
}

/// Eq. 4: the per-gradient learning-rate modulation `α_c = α_0 / δ^(1/v)`
/// expressed as a weight on the base rate (`1.0` for fresh gradients).
/// Larger `v` softens the modulation, avoiding diminishing updates.
///
/// ```
/// use stellaris_core::staleness_weight;
/// assert_eq!(staleness_weight(0, 3), 1.0);
/// assert!((staleness_weight(8, 3) - 0.5).abs() < 1e-6); // 1/∛8
/// ```
pub fn staleness_weight(delta: u64, v: u32) -> f32 {
    if delta == 0 {
        return 1.0;
    }
    assert!(v >= 1, "root factor v must be >= 1");
    // lint:allow(L4): delta and v are update counts far below 2^24, exact in f32
    let w = 1.0 / (delta as f32).powf(1.0 / v as f32);
    debug_assert!(
        w.is_finite() && w > 0.0 && w <= 1.0,
        "Eq. 4 weight must be in (0, 1]: delta={delta} v={v} -> {w}"
    );
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round0_is_unbounded_and_calibrates() {
        let mut s = StalenessSchedule::new(0.96);
        assert!(s.admits(1e9), "round 0 must admit anything");
        s.observe(3);
        s.observe(7);
        s.observe(5);
        assert_eq!(s.delta_max(), Some(7.0));
        assert_eq!(s.beta(), None);
    }

    #[test]
    fn beta_decays_exponentially() {
        let mut s = StalenessSchedule::new(0.5);
        s.observe(8);
        s.advance_round();
        assert_eq!(s.beta(), Some(4.0)); // 8 * 0.5^1
        s.advance_round();
        assert_eq!(s.beta(), Some(2.0));
        assert!(s.admits(1.9));
        assert!(!s.admits(2.1));
    }

    #[test]
    fn d_equal_one_keeps_threshold_flat() {
        // d = 1 "allows a pure asynchronous setting".
        let mut s = StalenessSchedule::new(1.0);
        s.observe(6);
        for _ in 0..50 {
            s.advance_round();
        }
        assert_eq!(s.beta(), Some(6.0));
    }

    #[test]
    fn observations_after_round0_do_not_move_delta_max() {
        let mut s = StalenessSchedule::new(0.9);
        s.observe(4);
        s.advance_round();
        s.observe(100);
        assert_eq!(s.delta_max(), Some(4.0));
    }

    #[test]
    fn no_observations_defaults_to_unit_delta_max() {
        let mut s = StalenessSchedule::new(0.9);
        s.advance_round();
        assert_eq!(s.beta(), Some(0.9));
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn invalid_decay_rejected() {
        let _ = StalenessSchedule::new(0.0);
    }

    #[test]
    fn beta_survives_rounds_beyond_i32_max() {
        // Regression: `powi(self.round as i32)` wrapped for rounds past
        // i32::MAX — a negative exponent turned the decaying threshold
        // into dmax / d^huge = +inf, admitting unboundedly stale gradients.
        let mut s = StalenessSchedule::new(0.96);
        s.observe(50);
        s.advance_rounds(i32::MAX as u64 + 5);
        let b = s.beta().unwrap();
        assert!(b.is_finite());
        assert!(
            (0.0..=50.0).contains(&b),
            "β must stay within [0, δ_max], got {b}"
        );
        // d = 1 must stay exactly flat no matter how far the round runs.
        let mut flat = StalenessSchedule::new(1.0);
        flat.observe(6);
        flat.advance_rounds(u64::MAX);
        assert_eq!(flat.beta(), Some(6.0));
    }

    #[test]
    fn weight_matches_eq4() {
        assert_eq!(staleness_weight(0, 3), 1.0);
        assert!((staleness_weight(8, 3) - 0.5).abs() < 1e-6, "8^(1/3) = 2");
        assert!((staleness_weight(4, 2) - 0.5).abs() < 1e-6, "4^(1/2) = 2");
        assert!((staleness_weight(5, 1) - 0.2).abs() < 1e-6, "v=1 is 1/δ");
    }

    #[test]
    fn larger_v_softens_modulation() {
        // "By setting larger v, Stellaris allows policy updates to be less
        // modulated by staleness" (§VIII-E).
        for delta in [2u64, 5, 20] {
            assert!(staleness_weight(delta, 4) > staleness_weight(delta, 2));
            assert!(staleness_weight(delta, 2) > staleness_weight(delta, 1));
        }
    }

    proptest! {
        #[test]
        fn prop_beta_monotonically_nonincreasing(d in 0.5f64..1.0, dmax in 1u64..100) {
            let mut s = StalenessSchedule::new(d);
            s.observe(dmax);
            let mut prev = f64::INFINITY;
            for _ in 0..30 {
                s.advance_round();
                let b = s.beta().unwrap();
                prop_assert!(b <= prev + 1e-9);
                prop_assert!(b > 0.0);
                prev = b;
            }
        }

        #[test]
        fn prop_beta_bounded_for_any_round(
            d in 0.01f64..1.0,
            dmax in 1u64..1000,
            rounds in 1u64..(1u64 << 40),
        ) {
            let mut s = StalenessSchedule::new(d);
            s.observe(dmax);
            s.advance_rounds(rounds);
            let b = s.beta().unwrap();
            prop_assert!(b.is_finite());
            prop_assert!(b >= 0.0);
            prop_assert!(b <= dmax as f64 + 1e-9);
        }

        #[test]
        fn prop_weight_in_unit_interval(delta in 0u64..10_000, v in 1u32..6) {
            let w = staleness_weight(delta, v);
            prop_assert!(w > 0.0 && w <= 1.0);
        }

        #[test]
        fn prop_weight_monotone_in_delta(a in 1u64..1000, b in 1u64..1000, v in 1u32..6) {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(staleness_weight(lo, v) >= staleness_weight(hi, v));
        }
    }
}
