//! # stellaris-core
//!
//! The primary contribution of the Stellaris paper (SC'24), reproduced in
//! Rust: a generic **asynchronous learning paradigm** for distributed DRL
//! training on serverless computing, built from
//!
//! * **importance-sampling truncation with a global view** (§V-A, Eq. 2) —
//!   [`truncation::RatioBoard`];
//! * **staleness-aware gradient aggregation** (§V-C, Eq. 3 & 4) —
//!   [`staleness::StalenessSchedule`], [`parameter::ParameterServer`];
//! * **on-demand serverless learner orchestration** (§V-B) —
//!   [`orchestrator::train`], with the GPU data loader, hierarchical data
//!   passing through the distributed cache, and the baseline aggregation
//!   rules (Softsync, SSP, pure-async, full-sync) used by the ablations.
//!
//! [`frameworks`] provides named configurations reproducing every baseline
//! system of the evaluation: vanilla PPO/IMPACT, Ray RLlib-style synchronous
//! multi-learner training, MinionsRL, and PAR-RL on the HPC cluster.

#![warn(missing_docs)]

pub mod aggregation;
pub mod autoscale;
pub mod config;
pub mod frameworks;
pub mod messages;
pub mod metrics;
pub mod orchestrator;
pub mod parameter;
pub mod remote;
pub mod staleness;
pub mod transport;
pub mod truncation;

pub use aggregation::{AggregationRule, GradAccumulator, SspThrottle};
pub use autoscale::LearnerAutoscaler;
pub use config::{Algo, Deployment, LearnerMode, TrainConfig};
pub use messages::GradientMsg;
pub use metrics::{rows_to_csv, TimerReport, Timers, TrainRow};
pub use orchestrator::{smooth, train, TrainResult, POLICY_KEY};
pub use parameter::{ParameterServer, ShardLayout, ShardedParameterServer, StalenessRing};
pub use remote::{
    serve_worker, snapshot_checksum, GradientRequest, RemoteError, RemoteFleet, RemoteRunReport,
    RemoteSetup, RemoteWorker, WireEvent, WireEventBatch,
};
pub use staleness::{staleness_weight, StalenessSchedule};
pub use transport::{Delivered, Placement, Router, Tier, TransportError};
pub use truncation::{reward_improvement_bound, RatioBoard};
