//! Cross-process training workers: the wire data types, the child-side
//! serve loop, and the parent-side fleet driver.
//!
//! Everything in this module rides the length-prefixed frame protocol of
//! [`stellaris_cache::frame`]: the parent spawns worker processes through
//! [`stellaris_serverless::ProcessPool`] (cold starts are *measured*
//! spawn→HELLO latency), drives a training round over the socket, and
//! injects the PR 4 chaos classes against *real* process lifecycles —
//! a crash is a child calling `exit()` mid-work, a dropped frame is a
//! killed peer, corruption is a syntactically intact frame whose payload
//! no longer decodes. Every failure surfaces as a typed [`RemoteError`]
//! and is recovered by the configured retry policy.
//!
//! Span stitching: each request frame carries the parent-side span ID in
//! its trace-ID header field; the worker opens its handler spans with
//! [`stellaris_telemetry::span_with_parent`] under a disjoint per-worker
//! span-ID base, and `PULL_SPANS` ships the child's events back for
//! [`stellaris_telemetry::ingest_events`] so one merged trace covers both
//! sides of the socket.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use stellaris_cache::frame::{op, Frame, FrameReader, WireError};
use stellaris_cache::{decode_seq, encode_seq, seq_encoded_len, Codec, CodecError};
use stellaris_envs::{make_env, EnvConfig, EnvId};
use stellaris_nn::ParamSet;
use stellaris_rl::{
    apply_to_snapshot, fill_gae, BlockLayout, DeltaStore, ImpactConfig, ImpactLearner,
    ImpalaConfig, PolicyDelta, PolicyNet, PolicySnapshot, PolicySpec, PpoConfig, RolloutWorker,
    SampleBatch,
};
use stellaris_serverless::{
    FaultPlan, FaultReport, FunctionKind, OverheadMode, Platform, ProcessConfig, ProcessPool,
    SpawnError, StartupProfile, WorkerProcess,
};
use stellaris_telemetry::{self as telemetry, Event, EventKind, FieldValue};

use crate::aggregation::AggregationRule;
use crate::config::{Algo, LearnerMode, TrainConfig};
use crate::messages::GradientMsg;
use crate::orchestrator::{build_policy, learner_compute};
use crate::parameter::ParameterServer;

// ---------------------------------------------------------------------------
// Wire data types
// ---------------------------------------------------------------------------

/// Everything a worker process needs to build its environment, policy and
/// rollout state (the payload of an `INIT` frame).
///
/// The algorithm travels as a family tag; workers use the laptop-scale
/// hyperparameter presets, which is exactly what the test-scale fleet
/// configurations run on the parent side too.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteSetup {
    /// Environment display name (parsed via [`EnvId::parse`]).
    pub env: String,
    /// Rendered frame side length ([`EnvConfig::frame_size`]).
    pub frame_size: usize,
    /// Episode cap ([`EnvConfig::max_steps`]).
    pub max_steps: usize,
    /// Policy hidden width.
    pub hidden: usize,
    /// Master seed (rollout streams derive from it like the orchestrator's
    /// actor threads do).
    pub seed: u64,
    /// Algorithm family tag: 0 = PPO, 1 = IMPACT, 2 = IMPALA.
    pub algo: u8,
    /// Timesteps per collect request.
    pub actor_steps: usize,
}

/// `RemoteSetup::algo` tag for PPO.
pub const ALGO_PPO: u8 = 0;
/// `RemoteSetup::algo` tag for IMPACT.
pub const ALGO_IMPACT: u8 = 1;
/// `RemoteSetup::algo` tag for IMPALA.
pub const ALGO_IMPALA: u8 = 2;

impl RemoteSetup {
    /// Projects a training config onto the wire setup.
    pub fn from_train(cfg: &TrainConfig) -> Self {
        Self {
            env: cfg.env_id.name().to_string(),
            frame_size: cfg.env_cfg.frame_size,
            max_steps: cfg.env_cfg.max_steps,
            hidden: cfg.hidden,
            seed: cfg.seed,
            algo: match cfg.algo {
                Algo::Ppo(_) => ALGO_PPO,
                Algo::Impact(_) => ALGO_IMPACT,
                Algo::Impala(_) => ALGO_IMPALA,
            },
            actor_steps: cfg.actor_steps,
        }
    }

    /// Reconstructs the algorithm (scaled presets) from the family tag.
    pub fn algo_config(&self) -> Result<Algo, CodecError> {
        match self.algo {
            ALGO_PPO => Ok(Algo::Ppo(PpoConfig::scaled())),
            ALGO_IMPACT => Ok(Algo::Impact(ImpactConfig::scaled())),
            ALGO_IMPALA => Ok(Algo::Impala(ImpalaConfig::scaled())),
            _ => Err(CodecError::Corrupt("algo tag")),
        }
    }

    fn env_cfg(&self) -> EnvConfig {
        EnvConfig {
            frame_size: self.frame_size,
            max_steps: self.max_steps,
        }
    }
}

impl Codec for RemoteSetup {
    fn encode(&self, buf: &mut BytesMut) {
        self.env.encode(buf);
        self.frame_size.encode(buf);
        self.max_steps.encode(buf);
        self.hidden.encode(buf);
        self.seed.encode(buf);
        self.algo.encode(buf);
        self.actor_steps.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Self {
            env: String::decode(buf)?,
            frame_size: usize::decode(buf)?,
            max_steps: usize::decode(buf)?,
            hidden: usize::decode(buf)?,
            seed: u64::decode(buf)?,
            algo: u8::decode(buf)?,
            actor_steps: usize::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.env.encoded_len()
            + self.frame_size.encoded_len()
            + self.max_steps.encoded_len()
            + self.hidden.encoded_len()
            + self.seed.encoded_len()
            + self.algo.encoded_len()
            + self.actor_steps.encoded_len()
    }
}

/// One learner-function invocation shipped over the socket: the snapshot
/// to differentiate against, the mini-batch, and the global IS-truncation
/// cap (`None` travels as a NaN sentinel — NaN is never a valid cap).
#[derive(Clone, Debug, PartialEq)]
pub struct GradientRequest {
    /// Policy snapshot the gradient is computed against.
    pub snap: PolicySnapshot,
    /// GAE-processed mini-batch.
    pub batch: SampleBatch,
    /// Global IS-truncation cap (Eq. 2's ρ view), if enabled.
    pub cap: Option<f32>,
    /// Learner slot identity (flows into `GradientMsg::learner_id`).
    pub learner_id: usize,
}

impl Codec for GradientRequest {
    fn encode(&self, buf: &mut BytesMut) {
        self.snap.encode(buf);
        self.batch.encode(buf);
        self.cap.unwrap_or(f32::NAN).encode(buf);
        self.learner_id.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let snap = PolicySnapshot::decode(buf)?;
        let batch = SampleBatch::decode(buf)?;
        let raw_cap = f32::decode(buf)?;
        let learner_id = usize::decode(buf)?;
        Ok(Self {
            snap,
            batch,
            cap: (!raw_cap.is_nan()).then_some(raw_cap),
            learner_id,
        })
    }

    fn encoded_len(&self) -> usize {
        self.snap.encoded_len()
            + self.batch.encoded_len()
            + self.cap.unwrap_or(f32::NAN).encoded_len()
            + self.learner_id.encoded_len()
    }
}

/// A telemetry [`Event`] in wire form. Field values are flattened to text
/// (staleness, rewards and durations survive; type fidelity does not need
/// to), and names are re-interned on the receiving side through the
/// bounded [`telemetry::intern_name`] table so a hostile peer cannot grow
/// parent memory without bound.
#[derive(Clone, Debug, PartialEq)]
pub struct WireEvent {
    /// 0 = span, 1 = instant.
    pub kind: u8,
    /// Event name.
    pub name: String,
    /// Span/event ID (minted under the worker's disjoint span-ID base).
    pub id: u64,
    /// Parent span ID — for handler roots this is the *parent process's*
    /// span, carried in by the request frame's trace-ID field.
    pub parent: u64,
    /// Recording thread number in the worker.
    pub tid: u64,
    /// Start timestamp (µs since the worker's trace epoch).
    pub ts_us: u64,
    /// Duration (µs, 0 for instants).
    pub dur_us: u64,
    /// Field names, parallel to `field_values`.
    pub field_names: Vec<String>,
    /// Field values rendered as text, parallel to `field_names`.
    pub field_values: Vec<String>,
}

fn field_text(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => x.to_string(),
        FieldValue::Bool(x) => x.to_string(),
        FieldValue::Text(s) => s.clone(),
    }
}

impl WireEvent {
    /// Captures a locally recorded event for the wire.
    pub fn from_event(e: &Event) -> Self {
        Self {
            kind: match e.kind {
                EventKind::Span => 0,
                EventKind::Instant => 1,
            },
            name: e.name.to_string(),
            id: e.id,
            parent: e.parent,
            tid: e.tid,
            ts_us: e.ts_us,
            dur_us: e.dur_us,
            field_names: e.fields.iter().map(|(n, _)| (*n).to_string()).collect(),
            field_values: e.fields.iter().map(|(_, v)| field_text(v)).collect(),
        }
    }

    /// Rebuilds a local event, interning names through the bounded table.
    pub fn into_event(self) -> Event {
        let WireEvent {
            kind,
            name,
            id,
            parent,
            tid,
            ts_us,
            dur_us,
            field_names,
            field_values,
        } = self;
        Event {
            kind: if kind == 1 {
                EventKind::Instant
            } else {
                EventKind::Span
            },
            name: telemetry::intern_name(&name),
            id,
            parent,
            tid,
            ts_us,
            dur_us,
            fields: field_names
                .iter()
                .zip(field_values)
                .map(|(n, v)| (telemetry::intern_name(n), FieldValue::Text(v)))
                .collect(),
        }
    }
}

impl Codec for WireEvent {
    fn encode(&self, buf: &mut BytesMut) {
        self.kind.encode(buf);
        self.name.encode(buf);
        self.id.encode(buf);
        self.parent.encode(buf);
        self.tid.encode(buf);
        self.ts_us.encode(buf);
        self.dur_us.encode(buf);
        encode_seq(&self.field_names, buf);
        encode_seq(&self.field_values, buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Self {
            kind: u8::decode(buf)?,
            name: String::decode(buf)?,
            id: u64::decode(buf)?,
            parent: u64::decode(buf)?,
            tid: u64::decode(buf)?,
            ts_us: u64::decode(buf)?,
            dur_us: u64::decode(buf)?,
            field_names: decode_seq(buf)?,
            field_values: decode_seq(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.kind.encoded_len()
            + self.name.encoded_len()
            + self.id.encoded_len()
            + self.parent.encoded_len()
            + self.tid.encoded_len()
            + self.ts_us.encoded_len()
            + self.dur_us.encoded_len()
            + seq_encoded_len(&self.field_names)
            + seq_encoded_len(&self.field_values)
    }
}

/// The payload of a `PULL_SPANS` reply: every event the worker had
/// buffered, drained and shipped in one frame.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireEventBatch {
    /// Drained worker events, in recording order.
    pub events: Vec<WireEvent>,
}

impl WireEventBatch {
    /// Snapshots locally drained events for the wire.
    pub fn from_events(events: &[Event]) -> Self {
        Self {
            events: events.iter().map(WireEvent::from_event).collect(),
        }
    }

    /// Converts back to local events (names interned).
    pub fn into_events(self) -> Vec<Event> {
        self.events.into_iter().map(WireEvent::into_event).collect()
    }
}

impl Codec for WireEventBatch {
    fn encode(&self, buf: &mut BytesMut) {
        encode_seq(&self.events, buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Self {
            events: decode_seq(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.events)
    }
}

// ---------------------------------------------------------------------------
// Child side: the worker serve loop
// ---------------------------------------------------------------------------

struct WorkerState {
    algo: Algo,
    actor_steps: usize,
    rollout: RolloutWorker,
    policy: PolicyNet,
    impact_state: Option<ImpactLearner>,
    snap: Option<PolicySnapshot>,
    /// Flat-vector geometry for applying `POLICY_DELTA` frames.
    layout: BlockLayout,
}

impl WorkerState {
    fn build(setup: RemoteSetup) -> Result<Self, String> {
        let Some(env_id) = EnvId::parse(&setup.env) else {
            return Err(format!("unknown env: {}", setup.env));
        };
        let algo = match setup.algo_config() {
            Ok(a) => a,
            Err(e) => return Err(format!("bad setup: {e}")),
        };
        let env_cfg = setup.env_cfg();
        let mut env = make_env(env_id, env_cfg);
        env.reset(setup.seed);
        let mut spec = PolicySpec::for_env(env.as_ref());
        spec.hidden = setup.hidden;
        let policy = PolicyNet::new(spec, setup.seed);
        // Same rollout seed derivation as the orchestrator's actor 0, so a
        // remote collect and an in-process collect draw identical episodes.
        let rollout = RolloutWorker::new(make_env(env_id, env_cfg), setup.seed.wrapping_mul(1000));
        let layout = BlockLayout::from_shapes(&policy.param_shapes());
        Ok(Self {
            algo,
            actor_steps: setup.actor_steps,
            rollout,
            policy,
            impact_state: None,
            snap: None,
            layout,
        })
    }
}

fn send_ok<S: Read + Write>(r: &mut FrameReader<S>, trace: u64) -> Result<(), WireError> {
    let cap = r.max_frame();
    stellaris_cache::frame::write_frame(r.get_mut(), op::OK, trace, &[], cap)
}

fn send_ok_value<S: Read + Write, T: Codec>(
    r: &mut FrameReader<S>,
    trace: u64,
    value: &T,
) -> Result<(), WireError> {
    let cap = r.max_frame();
    stellaris_cache::frame::write_value_frame(r.get_mut(), op::OK, trace, value, cap)
}

fn send_err<S: Read + Write>(
    r: &mut FrameReader<S>,
    trace: u64,
    msg: String,
) -> Result<(), WireError> {
    let cap = r.max_frame();
    stellaris_cache::frame::write_value_frame(r.get_mut(), op::ERR, trace, &msg, cap)
}

/// The worker-process main loop: HELLO, then serve request frames until
/// `SHUTDOWN`, the peer hangs up, or a `CRASH` frame terminates the
/// process mid-work.
///
/// Malformed payloads and protocol misuse are answered with an `ERR`
/// frame and the conversation continues — a frame that *parses* but does
/// not *decode* must never desynchronise the stream. Only transport-level
/// failures (EOF, I/O errors, frames over the cap) end the loop.
pub fn serve_worker<S: Read + Write>(
    stream: S,
    span_base: u64,
    max_frame: usize,
) -> Result<(), WireError> {
    telemetry::enable();
    telemetry::set_span_id_base(span_base);
    let mut reader = FrameReader::with_cap(stream, max_frame);
    let cap = reader.max_frame();
    stellaris_cache::frame::write_frame(reader.get_mut(), op::HELLO, span_base, &[], cap)?;
    let mut state: Option<WorkerState> = None;
    loop {
        let frame = reader.read_frame()?;
        let trace = frame.header.trace_id;
        match frame.header.kind {
            op::INIT => match frame.decode_value::<RemoteSetup>() {
                Ok(setup) => match WorkerState::build(setup) {
                    Ok(s) => {
                        state = Some(s);
                        send_ok(&mut reader, trace)?;
                    }
                    Err(msg) => send_err(&mut reader, trace, msg)?,
                },
                Err(e) => send_err(&mut reader, trace, format!("bad INIT: {e}"))?,
            },
            op::LOAD_POLICY => match (&mut state, frame.decode_value::<PolicySnapshot>()) {
                (Some(s), Ok(snap)) => {
                    s.snap = Some(snap);
                    send_ok(&mut reader, trace)?;
                }
                (None, _) => send_err(&mut reader, trace, "not initialised".to_string())?,
                (_, Err(e)) => send_err(&mut reader, trace, format!("bad LOAD_POLICY: {e}"))?,
            },
            op::POLICY_DELTA => match (&mut state, frame.decode_value::<PolicyDelta>()) {
                (Some(s), Ok(delta)) => {
                    // Apply against the worker's held snapshot; a base
                    // mismatch (or a delta with no base to land on) is an
                    // ERR and the parent falls back to a full LOAD_POLICY.
                    match &mut s.snap {
                        Some(snap) => match apply_to_snapshot(&delta, snap, &s.layout) {
                            Ok(()) => send_ok(&mut reader, trace)?,
                            Err(e) => send_err(&mut reader, trace, format!("delta rejected: {e}"))?,
                        },
                        None if delta.full => {
                            let mut snap = s.policy.snapshot();
                            match apply_to_snapshot(&delta, &mut snap, &s.layout) {
                                Ok(()) => {
                                    s.snap = Some(snap);
                                    send_ok(&mut reader, trace)?;
                                }
                                Err(e) => {
                                    send_err(&mut reader, trace, format!("delta rejected: {e}"))?
                                }
                            }
                        }
                        None => send_err(
                            &mut reader,
                            trace,
                            "delta rejected: no base snapshot loaded".to_string(),
                        )?,
                    }
                }
                (None, _) => send_err(&mut reader, trace, "not initialised".to_string())?,
                (_, Err(e)) => send_err(&mut reader, trace, format!("bad POLICY_DELTA: {e}"))?,
            },
            op::COLLECT => match (&mut state, frame.decode_value::<u64>()) {
                (Some(s), Ok(steps)) => {
                    let steps = if steps == 0 {
                        s.actor_steps
                    } else {
                        usize::try_from(steps).unwrap_or(s.actor_steps)
                    };
                    let span = telemetry::span_with_parent(
                        "remote.collect",
                        trace,
                        vec![("steps", steps.into())],
                    );
                    if let Some(snap) = &s.snap {
                        s.policy.load_snapshot(snap);
                    }
                    let batch = s.rollout.collect(&s.policy, steps);
                    drop(span);
                    send_ok_value(&mut reader, trace, &batch)?;
                }
                (None, _) => send_err(&mut reader, trace, "not initialised".to_string())?,
                (_, Err(e)) => send_err(&mut reader, trace, format!("bad COLLECT: {e}"))?,
            },
            op::GRADIENT => match (&mut state, frame.decode_value::<GradientRequest>()) {
                (Some(s), Ok(req)) => {
                    let span = telemetry::span_with_parent(
                        "remote.gradient",
                        trace,
                        vec![("learner", req.learner_id.into())],
                    );
                    let msg = learner_compute(
                        &s.algo,
                        &mut s.policy,
                        &mut s.impact_state,
                        &req.snap,
                        &req.batch,
                        req.cap,
                        req.learner_id,
                    );
                    drop(span);
                    send_ok_value(&mut reader, trace, &msg)?;
                }
                (None, _) => send_err(&mut reader, trace, "not initialised".to_string())?,
                (_, Err(e)) => send_err(&mut reader, trace, format!("bad GRADIENT: {e}"))?,
            },
            op::PULL_SPANS => {
                telemetry::flush_thread();
                let batch = WireEventBatch::from_events(&telemetry::drain());
                send_ok_value(&mut reader, trace, &batch)?;
            }
            op::SLEEP => match frame.decode_value::<u64>() {
                Ok(ms) => {
                    let span = telemetry::span_with_parent("remote.sleep", trace, Vec::new());
                    std::thread::sleep(Duration::from_millis(ms.min(60_000)));
                    drop(span);
                    send_ok(&mut reader, trace)?;
                }
                Err(e) => send_err(&mut reader, trace, format!("bad SLEEP: {e}"))?,
            },
            op::CRASH => {
                // The chaos hook for "the function died mid-work": exit
                // without a reply, so the parent's next read sees a real
                // EOF on a real socket.
                std::process::exit(17);
            }
            op::SHUTDOWN => {
                send_ok(&mut reader, trace)?;
                return Ok(());
            }
            op::RELAY => {
                let cap = reader.max_frame();
                stellaris_cache::frame::write_frame(
                    reader.get_mut(),
                    op::OK,
                    trace,
                    &frame.payload,
                    cap,
                )?;
            }
            other => send_err(&mut reader, trace, format!("unknown opcode {other}"))?,
        }
    }
}

// ---------------------------------------------------------------------------
// Parent side: typed client + fleet driver
// ---------------------------------------------------------------------------

/// Failure talking to a remote worker.
#[derive(Clone, Debug, PartialEq)]
pub enum RemoteError {
    /// Spawning or handshaking the worker process failed.
    Spawn(SpawnError),
    /// Frame-level transport failure (connection reset, truncation, a
    /// frame over the cap).
    Wire(WireError),
    /// The worker answered with an `ERR` frame (e.g. a corrupted payload
    /// that parsed as a frame but did not decode).
    Rejected(String),
    /// The worker answered with an unexpected opcode.
    Protocol(u8),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Spawn(e) => write!(f, "spawn failed: {e}"),
            RemoteError::Wire(e) => write!(f, "wire failure: {e}"),
            RemoteError::Rejected(msg) => write!(f, "worker rejected request: {msg}"),
            RemoteError::Protocol(k) => write!(f, "unexpected reply opcode {k}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<SpawnError> for RemoteError {
    fn from(e: SpawnError) -> Self {
        RemoteError::Spawn(e)
    }
}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Wire(e)
    }
}

/// Typed request/reply client over one worker process's framed socket.
pub struct RemoteWorker {
    proc: WorkerProcess,
}

impl RemoteWorker {
    /// Wraps a checked-out worker process.
    pub fn new(proc: WorkerProcess) -> Self {
        Self { proc }
    }

    /// The underlying process (chaos hooks: `kill`, `pid`, `is_alive`).
    pub fn process(&mut self) -> &mut WorkerProcess {
        &mut self.proc
    }

    /// Unwraps back to the process, e.g. for pool check-in.
    pub fn into_process(self) -> WorkerProcess {
        self.proc
    }

    fn request(&mut self, kind: u8, trace: u64, payload: &[u8]) -> Result<Frame, RemoteError> {
        self.proc.send(kind, trace, payload)?;
        let reply = self.proc.recv()?;
        match reply.header.kind {
            op::OK => Ok(reply),
            op::ERR => {
                let msg = match reply.decode_value::<String>() {
                    Ok(m) => m,
                    Err(_) => String::from("undecodable rejection"),
                };
                Err(RemoteError::Rejected(msg))
            }
            k => Err(RemoteError::Protocol(k)),
        }
    }

    /// Initialises the worker's environment/policy state.
    pub fn init(&mut self, setup: &RemoteSetup, trace: u64) -> Result<(), RemoteError> {
        self.request(op::INIT, trace, &setup.to_bytes()).map(|_| ())
    }

    /// Ships a policy snapshot for subsequent collects.
    pub fn load_policy(&mut self, snap: &PolicySnapshot, trace: u64) -> Result<(), RemoteError> {
        self.request(op::LOAD_POLICY, trace, &snap.to_bytes())
            .map(|_| ())
    }

    /// Ships a delta-encoded policy update (only the blocks changed since
    /// the worker's version). The worker answers `ERR` on a base mismatch,
    /// surfaced as [`RemoteError::Rejected`] — callers fall back to
    /// [`Self::load_policy`].
    pub fn load_policy_delta(
        &mut self,
        delta: &PolicyDelta,
        trace: u64,
    ) -> Result<(), RemoteError> {
        self.request(op::POLICY_DELTA, trace, &delta.to_bytes())
            .map(|_| ())
    }

    /// Collects `steps` timesteps remotely (0 = the setup's default).
    pub fn collect(&mut self, steps: u64, trace: u64) -> Result<SampleBatch, RemoteError> {
        let reply = self.request(op::COLLECT, trace, &steps.to_bytes())?;
        Ok(reply.decode_value::<SampleBatch>()?)
    }

    /// Computes one gradient remotely.
    pub fn gradient(
        &mut self,
        req: &GradientRequest,
        trace: u64,
    ) -> Result<GradientMsg, RemoteError> {
        let reply = self.request(op::GRADIENT, trace, &req.to_bytes())?;
        Ok(reply.decode_value::<GradientMsg>()?)
    }

    /// Chaos hook: sends the gradient request with its payload truncated —
    /// a syntactically valid frame whose payload no longer decodes. The
    /// stream stays in sync; the worker answers `ERR` and this returns
    /// [`RemoteError::Rejected`].
    pub fn gradient_corrupted(
        &mut self,
        req: &GradientRequest,
        trace: u64,
    ) -> Result<GradientMsg, RemoteError> {
        let bytes = req.to_bytes();
        let reply = self.request(op::GRADIENT, trace, &bytes[..bytes.len() / 2])?;
        Ok(reply.decode_value::<GradientMsg>()?)
    }

    /// Chaos hook: makes the worker sleep (a genuinely slow peer).
    pub fn sleep(&mut self, ms: u64, trace: u64) -> Result<(), RemoteError> {
        self.request(op::SLEEP, trace, &ms.to_bytes()).map(|_| ())
    }

    /// Chaos hook: orders the child to exit mid-work without replying.
    /// Always returns the resulting typed transport error (the next read
    /// observes a real EOF).
    pub fn crash(&mut self) -> RemoteError {
        let _send_may_race_exit = self.proc.send(op::CRASH, 0, &[]);
        match self.proc.recv() {
            Ok(f) => RemoteError::Protocol(f.header.kind),
            Err(e) => RemoteError::Wire(e),
        }
    }

    /// Drains the worker's telemetry buffer across the socket.
    pub fn pull_spans(&mut self, trace: u64) -> Result<Vec<Event>, RemoteError> {
        let reply = self.request(op::PULL_SPANS, trace, &[])?;
        Ok(reply.decode_value::<WireEventBatch>()?.into_events())
    }

    /// Graceful shutdown: the worker acknowledges and exits its loop.
    pub fn shutdown(&mut self) -> Result<(), RemoteError> {
        self.request(op::SHUTDOWN, 0, &[]).map(|_| ())
    }
}

/// Everything a remote training run reports (the cross-process analogue
/// of `TrainResult`, scoped to what the socket path can observe).
#[derive(Clone, Debug)]
pub struct RemoteRunReport {
    /// Rounds driven.
    pub rounds: usize,
    /// Final policy clock.
    pub final_version: u64,
    /// Order-sensitive checksum of the final snapshot weights; equal
    /// checksums mean bitwise-equal policies.
    pub final_checksum: u64,
    /// Gradients folded into the policy.
    pub grads_aggregated: u64,
    /// Staleness of every aggregated gradient, in admission order.
    pub staleness_log: Vec<u64>,
    /// Fresh worker processes spawned (cold starts).
    pub cold_spawns: u64,
    /// Keep-alive reuses of live idle workers (warm starts).
    pub warm_reuses: u64,
    /// Typed transport errors that a retry subsequently recovered.
    pub recovered: u64,
    /// Everything the fault plan injected and observed.
    pub faults: FaultReport,
    /// Worker-side telemetry events merged into the parent trace.
    pub events_ingested: usize,
    /// Learner invocations recorded on the platform (including failures).
    pub learner_invocations: u64,
    /// Policy loads shipped as full snapshots (round 0 and delta
    /// fallbacks).
    pub policy_full_pulls: u64,
    /// Policy loads shipped delta-encoded.
    pub policy_delta_pulls: u64,
    /// Payload bytes of full-snapshot policy loads.
    pub policy_bytes_full: u64,
    /// Payload bytes of delta-encoded policy loads.
    pub policy_bytes_delta: u64,
}

/// Order-sensitive FNV-1a fold over a snapshot's raw `f32` bits: two runs
/// with equal checksums hold bitwise-identical weights in the same order.
pub fn snapshot_checksum(snap: &PolicySnapshot) -> u64 {
    snap.flat.iter().fold(0xcbf2_9ce4_8422_2325_u64, |h, f| {
        (h ^ u64::from(f.to_bits())).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Drives training rounds against real worker child processes: one
/// fault-free actor worker collects trajectories, `max_learners` learner
/// workers compute gradients over the socket under seeded chaos, and the
/// parent aggregates deterministically (mini-batch order) so same-seed
/// runs reproduce the same final policy bit-for-bit.
pub struct RemoteFleet {
    pool: ProcessPool,
    platform: Platform,
    faults: FaultPlan,
    cfg: TrainConfig,
}

impl RemoteFleet {
    /// Creates a fleet that spawns `program worker_args... --connect ADDR
    /// --span-base N --max-frame BYTES` per worker.
    pub fn new(
        program: impl Into<String>,
        worker_args: Vec<String>,
        proc_cfg: ProcessConfig,
        cfg: TrainConfig,
    ) -> Self {
        let faults = FaultPlan::new(cfg.faults.clone());
        let platform = Platform::new(
            cfg.max_learners.max(1),
            1,
            StartupProfile::default(),
            OverheadMode::Record,
        );
        Self {
            pool: ProcessPool::new(program, worker_args, proc_cfg),
            platform,
            faults,
            cfg,
        }
    }

    /// The training configuration this fleet runs.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    fn checkout_worker(
        &self,
        kind: FunctionKind,
        index: usize,
        setup: &RemoteSetup,
    ) -> Result<RemoteWorker, RemoteError> {
        let proc = self.pool.checkout(kind, index)?;
        let cold = proc.is_cold();
        let cold_start = proc.cold_start();
        let mut worker = RemoteWorker::new(proc);
        if cold {
            let t0 = Instant::now();
            worker.init(setup, 0)?;
            let exec = t0.elapsed();
            self.platform
                .record_remote(kind, exec, exec + cold_start, cold_start, true, false);
        }
        Ok(worker)
    }

    /// Runs the configured number of rounds. Actor traffic is fault-free
    /// (its rollout stream must survive the whole run for same-seed
    /// determinism); learner traffic carries the seeded chaos plan, and
    /// every injected fault must surface as a typed error and be absorbed
    /// by the retry budget or the round's quorum degradation.
    pub fn run(&self) -> Result<RemoteRunReport, RemoteError> {
        let setup = RemoteSetup::from_train(&self.cfg);
        let n_learners = self.cfg.max_learners.max(1);
        let rule = match &self.cfg.learner_mode {
            LearnerMode::Async { rule } => rule.clone(),
            LearnerMode::Sync { n } => AggregationRule::FullSync { n: (*n).max(1) },
            LearnerMode::Single => AggregationRule::FullSync { n: 1 },
        };
        let mut server = ParameterServer::new(
            build_policy(&self.cfg),
            self.cfg.optimizer.build(self.cfg.algo.lr()),
            rule,
        );
        let gamma = self.cfg.algo.gamma();
        let lambda = match &self.cfg.algo {
            Algo::Ppo(p) => p.gae_lambda,
            Algo::Impact(_) | Algo::Impala(_) => 0.95,
        };

        // The actor's span base must not collide with any learner's, so it
        // takes the index right above the learner range.
        let mut actor = self.checkout_worker(FunctionKind::Actor, n_learners, &setup)?;
        let mut recovered = 0u64;
        let mut events_ingested = 0usize;

        // Delta-encoded policy pulls (DESIGN.md §16): the parent tracks the
        // version the actor worker holds and ships only the blocks changed
        // since. Round 0 (and any rejected delta) falls back to a full
        // LOAD_POLICY.
        let mut delta_store = DeltaStore::new(
            BlockLayout::from_shapes(&build_policy(&self.cfg).param_shapes()),
            &server.snapshot(),
        );
        let mut actor_version: Option<u64> = None;
        let mut policy_full_pulls = 0u64;
        let mut policy_delta_pulls = 0u64;
        let mut policy_bytes_full = 0u64;
        let mut policy_bytes_delta = 0u64;

        for round in 0..self.cfg.rounds {
            let mut round_span = telemetry::span_with("fleet.round", vec![("round", round.into())]);
            let snap = server.snapshot();

            // ----- actor collect (Step ①, fault-free) ----------------------
            let mut batch = {
                let collect_span =
                    telemetry::span_with("fleet.collect", vec![("round", round.into())]);
                let t0 = Instant::now();
                delta_store.ingest(&snap);
                let shipped = match actor_version {
                    Some(v) => {
                        let delta = delta_store.delta_since(v);
                        // Ship whichever encoding is smaller: a dense
                        // update that touches every block makes the delta
                        // (blocks + index overhead) larger than the flat
                        // snapshot, so the full pull wins there.
                        if delta.encoded_len() >= snap.encoded_len() {
                            false
                        } else {
                            policy_bytes_delta += delta.encoded_len() as u64;
                            match actor.load_policy_delta(&delta, collect_span.id()) {
                                Ok(()) => {
                                    policy_delta_pulls += 1;
                                    true
                                }
                                // Base mismatch: the worker's lineage
                                // diverged (e.g. a respawn); fall back to
                                // the full pull.
                                Err(RemoteError::Rejected(_)) => false,
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    None => false,
                };
                if !shipped {
                    actor.load_policy(&snap, collect_span.id())?;
                    policy_full_pulls += 1;
                    policy_bytes_full += snap.encoded_len() as u64;
                }
                actor_version = Some(delta_store.version());
                let batch = actor.collect(self.cfg.actor_steps as u64, collect_span.id())?;
                let exec = t0.elapsed();
                self.platform.record_remote(
                    FunctionKind::Actor,
                    exec,
                    exec,
                    Duration::ZERO,
                    false,
                    false,
                );
                batch
            };

            // ----- GPU data loader (§V-B), parent-side ---------------------
            fill_gae(&mut batch, gamma, lambda);
            batch.normalize_advantages();
            let minibatches = batch.minibatches(self.cfg.minibatch);

            // ----- learner waves over the socket (Step ②) ------------------
            let mut learners: Vec<Option<RemoteWorker>> = (0..n_learners).map(|_| None).collect();
            let mut msgs: Vec<(usize, GradientMsg)> = Vec::with_capacity(minibatches.len());
            for (i, mb) in minibatches.into_iter().enumerate() {
                let l = i % n_learners;
                // One chaos draw per mini-batch, before the retry loop, so
                // a retried attempt is clean and recovery is guaranteed
                // within the budget — and the draw sequence (hence the
                // run's outcome) is a pure function of the fault seed.
                let crash = self.faults.should_crash();
                let straggle = self.faults.straggle();
                let corrupt = self.faults.should_corrupt_frame();
                let dropped = self.faults.should_drop_frame();
                let req = GradientRequest {
                    snap: snap.clone(),
                    batch: mb,
                    cap: self.cfg.truncation_rho,
                    learner_id: l,
                };
                let mut span = telemetry::span_with(
                    "fleet.gradient",
                    vec![("minibatch", i.into()), ("learner", l.into())],
                );
                let mut outcome: Option<GradientMsg> = None;
                let mut attempt: u32 = 0;
                loop {
                    if learners[l].is_none() {
                        match self.checkout_worker(FunctionKind::Learner, l, &setup) {
                            Ok(w) => learners[l] = Some(w),
                            Err(_spawn_failed) if attempt < self.cfg.retry.max_retries => {
                                self.faults.note_retry(Duration::ZERO);
                                attempt += 1;
                                continue;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    let Some(w) = learners[l].as_mut() else { break };
                    let injected = attempt == 0;
                    let t0 = Instant::now();
                    let result: Result<GradientMsg, RemoteError> = if injected && dropped {
                        // Frame drop, socket edition: the peer vanishes and
                        // the connection resets under the request.
                        w.process().kill();
                        w.gradient(&req, span.id())
                    } else if injected && crash {
                        Err(w.crash())
                    } else if injected && corrupt {
                        w.gradient_corrupted(&req, span.id())
                    } else {
                        if let (true, Some(dur)) = (injected, straggle) {
                            let _slow_peer = w.sleep(dur.as_millis() as u64, span.id());
                        }
                        w.gradient(&req, span.id())
                    };
                    let exec = t0.elapsed();
                    match result {
                        Ok(msg) => {
                            self.platform.record_remote(
                                FunctionKind::Learner,
                                exec,
                                exec,
                                Duration::ZERO,
                                false,
                                false,
                            );
                            if attempt > 0 {
                                recovered += 1;
                                span.field("recovered_after", attempt);
                            }
                            outcome = Some(msg);
                            break;
                        }
                        Err(e) => {
                            self.platform.record_remote(
                                FunctionKind::Learner,
                                exec,
                                exec,
                                Duration::ZERO,
                                false,
                                true,
                            );
                            span.field("error", format!("{e}"));
                            // A rejected frame leaves the stream in sync;
                            // anything wire-level poisons the connection
                            // and the worker respawns cold.
                            if !matches!(e, RemoteError::Rejected(_)) {
                                learners[l] = None;
                            }
                            if attempt >= self.cfg.retry.max_retries {
                                break;
                            }
                            let backoff = self.cfg.retry.backoff(attempt, self.faults.jitter());
                            self.faults.note_retry(backoff);
                            std::thread::sleep(backoff);
                            attempt += 1;
                        }
                    }
                }
                match outcome {
                    Some(msg) => msgs.push((i, msg)),
                    None => {
                        // Quorum degradation: this mini-batch's gradient is
                        // permanently lost and the round proceeds without it.
                        self.faults.note_exhausted();
                        span.field("exhausted", true);
                    }
                }
            }

            // ----- aggregation (Step ③), deterministic order ---------------
            msgs.sort_by_key(|(i, _)| *i);
            for (_, msg) in msgs {
                server.offer(msg);
            }
            server.advance_round();
            round_span.field("version", server.clock());

            let last_round = round + 1 == self.cfg.rounds;
            for w in learners.into_iter().flatten() {
                let mut w = w;
                if last_round {
                    if let Ok(events) = w.pull_spans(round_span.id()) {
                        events_ingested += events.len();
                        telemetry::ingest_events(events);
                    }
                    let _graceful = w.shutdown();
                    // Drop kills whatever is left of the process.
                } else {
                    // Keep-alive: the worker idles in the pool and the next
                    // round's checkout reuses it warm.
                    self.pool.checkin(w.into_process());
                }
            }
        }

        if let Ok(events) = actor.pull_spans(0) {
            events_ingested += events.len();
            telemetry::ingest_events(events);
        }
        let _graceful = actor.shutdown();
        self.pool.shutdown();

        let (cold_spawns, warm_reuses) = self.pool.start_counts();
        let snapshot = server.snapshot();
        Ok(RemoteRunReport {
            rounds: self.cfg.rounds,
            final_version: server.clock(),
            final_checksum: snapshot_checksum(&snapshot),
            grads_aggregated: server.grads_aggregated,
            staleness_log: server.staleness_log.to_vec(),
            cold_spawns,
            warm_reuses,
            recovered,
            faults: self.faults.report(),
            events_ingested,
            policy_full_pulls,
            policy_delta_pulls,
            policy_bytes_full,
            policy_bytes_delta,
            learner_invocations: self
                .platform
                .records()
                .iter()
                .filter(|r| r.kind == FunctionKind::Learner)
                .count() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use stellaris_cache::frame::{write_value_frame, DEFAULT_MAX_FRAME};
    use stellaris_envs::EnvId;
    use stellaris_rl::BlockUpdate;
    use stellaris_serverless::WireStream;

    fn tiny_setup() -> RemoteSetup {
        RemoteSetup {
            env: "PointMass".to_string(),
            frame_size: 20,
            max_steps: 80,
            hidden: 16,
            seed: 11,
            algo: ALGO_PPO,
            actor_steps: 32,
        }
    }

    #[test]
    fn setup_and_request_codecs_roundtrip() {
        let s = tiny_setup();
        assert_eq!(RemoteSetup::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(s.encoded_len(), s.to_bytes().len());

        let cfg = TrainConfig::test_tiny(EnvId::PointMass, 11);
        let snap = build_policy(&cfg).snapshot();
        let mut worker = RolloutWorker::new(
            make_env(EnvId::PointMass, EnvConfig::tiny()),
            11u64.wrapping_mul(1000),
        );
        let policy = build_policy(&cfg);
        let batch = worker.collect(&policy, 16);
        for cap in [Some(1.0f32), None] {
            let req = GradientRequest {
                snap: snap.clone(),
                batch: batch.clone(),
                cap,
                learner_id: 2,
            };
            let back = GradientRequest::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(back.cap, cap, "NaN sentinel must round-trip None");
            assert_eq!(back, req);
            assert_eq!(req.encoded_len(), req.to_bytes().len());
        }
    }

    #[test]
    fn setup_from_train_maps_algo_tags() {
        let cfg = TrainConfig::test_tiny(EnvId::PointMass, 1);
        assert_eq!(RemoteSetup::from_train(&cfg).algo, ALGO_PPO);
        let cfg = cfg.with_impact(ImpactConfig::scaled());
        assert_eq!(RemoteSetup::from_train(&cfg).algo, ALGO_IMPACT);
        let cfg = cfg.with_impala(ImpalaConfig::scaled());
        let s = RemoteSetup::from_train(&cfg);
        assert_eq!(s.algo, ALGO_IMPALA);
        assert_eq!(s.algo_config().unwrap().name(), "IMPALA");
        let bad = RemoteSetup { algo: 9, ..s };
        assert!(
            bad.algo_config().is_err(),
            "unknown tag is typed, not a panic"
        );
    }

    #[test]
    fn wire_events_roundtrip_with_interned_names() {
        let batch = WireEventBatch {
            events: vec![WireEvent {
                kind: 0,
                name: "remote.gradient".to_string(),
                id: (1 << 40) + 3,
                parent: 42,
                tid: 1,
                ts_us: 10,
                dur_us: 5,
                field_names: vec!["learner".to_string()],
                field_values: vec!["2".to_string()],
            }],
        };
        let decoded = WireEventBatch::from_bytes(&batch.to_bytes()).unwrap();
        assert_eq!(decoded, batch);
        let events = decoded.into_events();
        assert_eq!(events[0].name, "remote.gradient");
        assert_eq!(events[0].parent, 42);
        assert_eq!(
            events[0].fields,
            vec![("learner", FieldValue::Text("2".to_string()))]
        );
    }

    /// The delta-pull half of the wire protocol against a live worker:
    /// a partial `POLICY_DELTA` lands bit-for-bit (the subsequent collect
    /// equals a local collect under the delta-applied snapshot), a
    /// mismatched base is an `ERR` that leaves the stream usable, and
    /// deltas before INIT / before a base snapshot are typed rejections.
    #[test]
    fn policy_delta_over_tcp() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_worker(WireStream::Tcp(stream), 1 << 41, DEFAULT_MAX_FRAME)
        });
        let stream = WireStream::connect_addr(&format!("tcp:127.0.0.1:{port}")).unwrap();
        let mut reader = FrameReader::new(stream);
        let cap = reader.max_frame();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::HELLO);

        let cfg = TrainConfig::test_tiny(EnvId::PointMass, 11);
        let policy = build_policy(&cfg);
        let layout = BlockLayout::from_shapes(&policy.param_shapes());
        let snap0 = policy.snapshot();
        let delta = PolicyDelta {
            from: snap0.version,
            to: snap0.version + 1,
            full: false,
            blocks: vec![BlockUpdate {
                index: 0,
                data: layout.split(&snap0.flat)[0]
                    .iter()
                    .map(|x| x + 0.25)
                    .collect(),
            }],
        };

        // Before INIT: rejected, stream intact.
        write_value_frame(reader.get_mut(), op::POLICY_DELTA, 1, &delta, cap).unwrap();
        let early = reader.read_frame().unwrap();
        assert_eq!(early.header.kind, op::ERR);

        write_value_frame(reader.get_mut(), op::INIT, 2, &tiny_setup(), cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);

        // A partial delta with no base snapshot loaded yet: rejected.
        write_value_frame(reader.get_mut(), op::POLICY_DELTA, 3, &delta, cap).unwrap();
        let no_base = reader.read_frame().unwrap();
        assert_eq!(no_base.header.kind, op::ERR);
        let msg = no_base.decode_value::<String>().unwrap();
        assert!(msg.contains("delta rejected"), "typed rejection: {msg}");

        write_value_frame(reader.get_mut(), op::LOAD_POLICY, 4, &snap0, cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);

        // Now the delta applies.
        write_value_frame(reader.get_mut(), op::POLICY_DELTA, 5, &delta, cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);

        // A delta against the wrong base: ERR naming the mismatch, and the
        // worker's state must stay at the applied version.
        let stale = PolicyDelta {
            from: 99,
            to: 100,
            full: false,
            blocks: delta.blocks.clone(),
        };
        write_value_frame(reader.get_mut(), op::POLICY_DELTA, 6, &stale, cap).unwrap();
        let mismatch = reader.read_frame().unwrap();
        assert_eq!(mismatch.header.kind, op::ERR);
        let msg = mismatch.decode_value::<String>().unwrap();
        assert!(msg.contains("base"), "mismatch names the base: {msg}");

        // Collect under the delta-applied policy: must equal a local collect
        // with the same snapshot bits and rollout seed. Trace id 4 matches
        // the conversation test's collect: both workers share this process's
        // telemetry buffer, so a concurrent PULL_SPANS there may drain this
        // span and assert on its parent.
        write_value_frame(reader.get_mut(), op::COLLECT, 4, &12u64, cap).unwrap();
        let reply = reader.read_frame().unwrap();
        assert_eq!(reply.header.kind, op::OK);
        let remote_batch = reply.decode_value::<SampleBatch>().unwrap();

        let mut expected_snap = snap0.clone();
        apply_to_snapshot(&delta, &mut expected_snap, &layout).unwrap();
        let mut local_policy = build_policy(&cfg);
        local_policy.load_snapshot(&expected_snap);
        let setup = tiny_setup();
        let mut local_rollout = RolloutWorker::new(
            make_env(EnvId::PointMass, setup.env_cfg()),
            setup.seed.wrapping_mul(1000),
        );
        let local_batch = local_rollout.collect(&local_policy, 12);
        assert_eq!(
            remote_batch, local_batch,
            "delta-applied policy diverged from local application"
        );

        write_value_frame(reader.get_mut(), op::SHUTDOWN, 8, &0u8, cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);
        server.join().unwrap().unwrap();
    }

    /// Full conversation against `serve_worker` on a real TCP socket:
    /// HELLO → INIT → LOAD_POLICY → COLLECT → GRADIENT (clean, corrupt,
    /// clean again) → PULL_SPANS → SHUTDOWN. Also pins that the remote
    /// gradient equals the local `learner_compute` on identical inputs.
    #[test]
    fn serve_worker_conversation_over_tcp() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_worker(WireStream::Tcp(stream), 1 << 40, DEFAULT_MAX_FRAME)
        });
        let stream = WireStream::connect_addr(&format!("tcp:127.0.0.1:{port}")).unwrap();
        let mut reader = FrameReader::new(stream);
        let cap = reader.max_frame();

        let hello = reader.read_frame().unwrap();
        assert_eq!(hello.header.kind, op::HELLO);

        // Requests before INIT are rejected, not fatal.
        write_value_frame(reader.get_mut(), op::COLLECT, 1, &8u64, cap).unwrap();
        let early = reader.read_frame().unwrap();
        assert_eq!(early.header.kind, op::ERR);

        let setup = tiny_setup();
        write_value_frame(reader.get_mut(), op::INIT, 2, &setup, cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);

        let cfg = TrainConfig::test_tiny(EnvId::PointMass, 11);
        let snap = build_policy(&cfg).snapshot();
        write_value_frame(reader.get_mut(), op::LOAD_POLICY, 3, &snap, cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);

        write_value_frame(reader.get_mut(), op::COLLECT, 4, &16u64, cap).unwrap();
        let reply = reader.read_frame().unwrap();
        assert_eq!(reply.header.kind, op::OK);
        assert_eq!(reply.header.trace_id, 4, "reply echoes the request trace");
        let batch = reply.decode_value::<SampleBatch>().unwrap();
        assert_eq!(batch.len(), 16);

        let mut gae_batch = batch.clone();
        fill_gae(&mut gae_batch, 0.99, 0.95);
        gae_batch.normalize_advantages();
        let req = GradientRequest {
            snap: snap.clone(),
            batch: gae_batch,
            cap: Some(1.0),
            learner_id: 0,
        };

        // Corrupt first: intact frame, undecodable payload → ERR, and the
        // stream must stay usable.
        let bytes = req.to_bytes();
        stellaris_cache::frame::write_frame(
            reader.get_mut(),
            op::GRADIENT,
            5,
            &bytes[..bytes.len() / 2],
            cap,
        )
        .unwrap();
        let rejected = reader.read_frame().unwrap();
        assert_eq!(rejected.header.kind, op::ERR);
        let msg = rejected.decode_value::<String>().unwrap();
        assert!(msg.contains("bad GRADIENT"), "typed rejection: {msg}");

        write_value_frame(reader.get_mut(), op::GRADIENT, 6, &req, cap).unwrap();
        let reply = reader.read_frame().unwrap();
        assert_eq!(reply.header.kind, op::OK);
        let remote_msg = reply.decode_value::<GradientMsg>().unwrap();

        // The same inputs through the local learner body must agree
        // bit-for-bit — both sides built the policy from the same spec and
        // seed, and `learner_compute` loads the snapshot first.
        let mut local = build_policy(&cfg);
        let mut impact_state = None;
        let local_msg = learner_compute(
            &Algo::Ppo(PpoConfig::scaled()),
            &mut local,
            &mut impact_state,
            &req.snap,
            &req.batch,
            req.cap,
            0,
        );
        assert_eq!(remote_msg, local_msg, "remote and local gradients diverge");

        write_value_frame(reader.get_mut(), op::PULL_SPANS, 7, &0u8, cap).unwrap();
        let spans = reader.read_frame().unwrap();
        assert_eq!(spans.header.kind, op::OK);
        let events = spans
            .decode_value::<WireEventBatch>()
            .unwrap()
            .into_events();
        let collect = events
            .iter()
            .find(|e| e.name == "remote.collect")
            .expect("collect span crossed the wire");
        assert_eq!(collect.parent, 4, "span parents onto the request trace id");
        assert!(
            collect.id >= 1 << 40,
            "child ids minted above the span base"
        );
        let grad = events
            .iter()
            .find(|e| e.name == "remote.gradient")
            .expect("gradient span crossed the wire");
        assert_eq!(grad.parent, 6);

        stellaris_cache::frame::write_frame(reader.get_mut(), op::SHUTDOWN, 8, &[], cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn unknown_opcode_is_rejected_not_fatal() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_worker(WireStream::Tcp(stream), 2 << 40, DEFAULT_MAX_FRAME)
        });
        let stream = WireStream::connect_addr(&format!("tcp:127.0.0.1:{port}")).unwrap();
        let mut reader = FrameReader::new(stream);
        let cap = reader.max_frame();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::HELLO);
        stellaris_cache::frame::write_frame(reader.get_mut(), 0x3f, 9, b"??", cap).unwrap();
        let reply = reader.read_frame().unwrap();
        assert_eq!(reply.header.kind, op::ERR);
        stellaris_cache::frame::write_frame(reader.get_mut(), op::SHUTDOWN, 10, &[], cap).unwrap();
        assert_eq!(reader.read_frame().unwrap().header.kind, op::OK);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn snapshot_checksum_is_order_and_bit_sensitive() {
        let cfg = TrainConfig::test_tiny(EnvId::PointMass, 3);
        let snap = build_policy(&cfg).snapshot();
        let same = build_policy(&cfg).snapshot();
        assert_eq!(snapshot_checksum(&snap), snapshot_checksum(&same));
        let mut tweaked = snap.clone();
        tweaked.flat[0] += 1.0e-6;
        assert_ne!(snapshot_checksum(&snap), snapshot_checksum(&tweaked));
    }
}
