//! Named configurations reproducing every baseline system in the paper's
//! evaluation (Table I rows and the §VIII-B/§VIII-D comparisons), plus the
//! `+Stellaris` integration of each.

use stellaris_envs::EnvId;
use stellaris_rl::{ImpactConfig, ImpalaConfig, PpoConfig};
use stellaris_serverless::Cluster;

use crate::aggregation::AggregationRule;
use crate::config::{Algo, Deployment, LearnerMode, TrainConfig};

/// Stellaris itself: asynchronous staleness-aware learners, global IS
/// truncation, fully serverless (the paper's headline configuration).
pub fn stellaris(env: EnvId, seed: u64) -> TrainConfig {
    TrainConfig::stellaris_scaled(env, seed)
}

/// Vanilla distributed PPO: synchronous multi-learner data parallelism on
/// reserved (serverful) VMs — the "PPO" baseline of Figs. 6 and 8.
pub fn ppo_vanilla(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed);
    cfg.algo = Algo::Ppo(PpoConfig::scaled());
    cfg.learner_mode = LearnerMode::Sync {
        n: cfg.max_learners,
    };
    cfg.deployment = Deployment::Serverful;
    cfg.truncation_rho = None;
    cfg
}

/// PPO + Stellaris: the same algorithm handed to the asynchronous
/// serverless learner paradigm.
pub fn ppo_stellaris(env: EnvId, seed: u64) -> TrainConfig {
    TrainConfig::stellaris_scaled(env, seed)
}

/// Vanilla IMPACT: the SOTA off-policy baseline (asynchronous actors,
/// synchronous serverful learners with a target network) — Figs. 7 and 8.
pub fn impact_vanilla(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed).with_impact(ImpactConfig::scaled());
    cfg.learner_mode = LearnerMode::Sync {
        n: cfg.max_learners,
    };
    cfg.deployment = Deployment::Serverful;
    cfg.truncation_rho = None;
    cfg
}

/// IMPACT + Stellaris.
pub fn impact_stellaris(env: EnvId, seed: u64) -> TrainConfig {
    TrainConfig::stellaris_scaled(env, seed).with_impact(ImpactConfig::scaled())
}

/// Vanilla IMPALA (extension beyond the paper's two algorithms): the
/// original asynchronous actor-learner architecture with V-trace, run with
/// synchronous serverful learners like the other vanilla baselines.
pub fn impala_vanilla(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed).with_impala(ImpalaConfig::scaled());
    cfg.learner_mode = LearnerMode::Sync {
        n: cfg.max_learners,
    };
    cfg.deployment = Deployment::Serverful;
    cfg.truncation_rho = None;
    cfg
}

/// IMPALA + Stellaris: asynchronous staleness-aware serverless learners.
pub fn impala_stellaris(env: EnvId, seed: u64) -> TrainConfig {
    TrainConfig::stellaris_scaled(env, seed).with_impala(ImpalaConfig::scaled())
}

/// Ray RLlib-style training: industry-grade synchronous learner group on
/// serverful infrastructure (Fig. 9 baseline).
pub fn rllib(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = ppo_vanilla(env, seed);
    cfg.learner_mode = LearnerMode::Sync {
        n: 4.min(cfg.max_learners.max(1)),
    };
    cfg
}

/// RLlib + Stellaris: "we implement the logic of our asynchronous
/// serverless learner functions inside RLlib's default learner group".
pub fn rllib_stellaris(env: EnvId, seed: u64) -> TrainConfig {
    TrainConfig::stellaris_scaled(env, seed)
}

/// MinionsRL: serverless actors with dynamic scaling feeding a single
/// centralized learner, synchronous updates (Fig. 10 baseline).
pub fn minions_rl(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed);
    cfg.learner_mode = LearnerMode::Single;
    cfg.deployment = Deployment::Serverless;
    cfg.dynamic_actors = true;
    cfg.truncation_rho = None;
    cfg
}

/// MinionsRL + Stellaris: keep the dynamically scaled serverless actors,
/// replace the synchronous single learner with asynchronous learners.
pub fn minions_rl_stellaris(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed);
    cfg.dynamic_actors = true;
    cfg
}

/// PAR-RL: the Argonne HPC RL workload — synchronous data-parallel
/// learners on the reserved HPC cluster (Fig. 12 baseline).
pub fn par_rl(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = ppo_vanilla(env, seed);
    cfg.cluster = Cluster::hpc();
    cfg
}

/// Stellaris on the HPC cluster profile (Fig. 12 comparison).
pub fn stellaris_hpc(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed);
    cfg.cluster = Cluster::hpc();
    cfg
}

/// Fig. 2 variant: Stellaris without asynchronous learning (synchronous
/// learners, still serverless billing).
pub fn stellaris_no_async(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed);
    cfg.learner_mode = LearnerMode::Sync {
        n: cfg.max_learners,
    };
    cfg
}

/// Fig. 2 variant: Stellaris without serverless computing (asynchronous
/// learners on reserved VMs, serverful billing).
pub fn stellaris_no_serverless(env: EnvId, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::stellaris_scaled(env, seed);
    cfg.deployment = Deployment::Serverful;
    cfg
}

/// Fig. 11(a) ablation: swap only the aggregation rule.
pub fn with_aggregation(mut cfg: TrainConfig, rule: AggregationRule) -> TrainConfig {
    cfg.learner_mode = LearnerMode::Async { rule };
    cfg
}

/// Fig. 11(b) ablation: disable the global IS truncation.
pub fn without_truncation(mut cfg: TrainConfig) -> TrainConfig {
    cfg.truncation_rho = None;
    cfg
}

/// Table I capability flags for a named framework row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Framework name.
    pub name: &'static str,
    /// Asynchronous learners.
    pub async_learners: bool,
    /// Scalable actors.
    pub scalable_actors: bool,
    /// Supports both on- and off-policy algorithms.
    pub on_and_off_policy: bool,
    /// Serverless infrastructure.
    pub serverless: bool,
}

/// The rows of Table I.
pub fn table1() -> Vec<Capabilities> {
    vec![
        Capabilities {
            name: "Ray RLlib",
            async_learners: false,
            scalable_actors: false,
            on_and_off_policy: true,
            serverless: false,
        },
        Capabilities {
            name: "MSRL",
            async_learners: false,
            scalable_actors: false,
            on_and_off_policy: true,
            serverless: false,
        },
        Capabilities {
            name: "SEED RL",
            async_learners: false,
            scalable_actors: false,
            on_and_off_policy: true,
            serverless: false,
        },
        Capabilities {
            name: "SRL",
            async_learners: false,
            scalable_actors: false,
            on_and_off_policy: true,
            serverless: false,
        },
        Capabilities {
            name: "PQL",
            async_learners: false,
            scalable_actors: false,
            on_and_off_policy: false,
            serverless: false,
        },
        Capabilities {
            name: "MinionsRL",
            async_learners: false,
            scalable_actors: true,
            on_and_off_policy: false,
            serverless: true,
        },
        Capabilities {
            name: "Stellaris",
            async_learners: true,
            scalable_actors: true,
            on_and_off_policy: true,
            serverless: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_have_expected_topologies() {
        let p = ppo_vanilla(EnvId::Hopper, 0);
        assert!(matches!(p.learner_mode, LearnerMode::Sync { .. }));
        assert_eq!(p.deployment, Deployment::Serverful);
        assert!(p.truncation_rho.is_none());

        let m = minions_rl(EnvId::Hopper, 0);
        assert!(matches!(m.learner_mode, LearnerMode::Single));
        assert!(m.dynamic_actors);
        assert_eq!(m.deployment, Deployment::Serverless);

        let s = stellaris(EnvId::Hopper, 0);
        assert!(matches!(s.learner_mode, LearnerMode::Async { .. }));
        assert_eq!(s.truncation_rho, Some(1.0));
    }

    #[test]
    fn impact_baseline_is_off_policy() {
        let c = impact_vanilla(EnvId::Qbert, 1);
        assert_eq!(c.algo.name(), "IMPACT");
        assert_eq!(impact_stellaris(EnvId::Qbert, 1).algo.name(), "IMPACT");
    }

    #[test]
    fn impala_presets() {
        let v = impala_vanilla(EnvId::Hopper, 0);
        assert_eq!(v.algo.name(), "IMPALA");
        assert_eq!(v.deployment, Deployment::Serverful);
        let s = impala_stellaris(EnvId::Hopper, 0);
        assert_eq!(s.algo.name(), "IMPALA");
        assert!(matches!(s.learner_mode, LearnerMode::Async { .. }));
    }

    #[test]
    fn hpc_profiles_use_hpc_cluster() {
        let p = par_rl(EnvId::Hopper, 0);
        assert_eq!(p.cluster.total_gpus(), 16);
        let s = stellaris_hpc(EnvId::Hopper, 0);
        assert_eq!(s.cluster.actor_slots(), 960);
    }

    #[test]
    fn fig2_variants_flip_exactly_one_axis() {
        let full = stellaris(EnvId::Hopper, 0);
        let no_async = stellaris_no_async(EnvId::Hopper, 0);
        assert!(matches!(no_async.learner_mode, LearnerMode::Sync { .. }));
        assert_eq!(no_async.deployment, full.deployment);
        let no_sls = stellaris_no_serverless(EnvId::Hopper, 0);
        assert!(matches!(no_sls.learner_mode, LearnerMode::Async { .. }));
        assert_eq!(no_sls.deployment, Deployment::Serverful);
    }

    #[test]
    fn ablation_helpers() {
        let cfg = with_aggregation(stellaris(EnvId::Hopper, 0), AggregationRule::PureAsync);
        match cfg.learner_mode {
            LearnerMode::Async { rule } => assert_eq!(rule.name(), "pure-async"),
            _ => panic!("must stay async"),
        }
        assert!(without_truncation(stellaris(EnvId::Hopper, 0))
            .truncation_rho
            .is_none());
    }

    #[test]
    fn table1_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        let stellaris_row = rows.last().unwrap();
        assert!(stellaris_row.async_learners && stellaris_row.serverless);
        assert!(
            rows.iter().filter(|r| r.serverless).count() == 2,
            "MinionsRL + Stellaris"
        );
        assert!(rows
            .iter()
            .all(|r| r.name != "Stellaris" || r.on_and_off_policy));
    }
}
