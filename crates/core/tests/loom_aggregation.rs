//! Loom model checks for the aggregation layer's round gating (§V-C).
//!
//! Run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p stellaris-core --test loom_aggregation
//! ```
//!
//! The orchestrator serialises `ParameterServer` access behind a mutex while
//! learners race `offer` against the round driver's `advance_round`. These
//! models check the accounting invariants that must hold across *every*
//! interleaving of that race:
//!
//! - gradients are conserved: `pending + aggregated == offered`,
//! - the policy clock only moves when updates happen,
//! - the Eq. 3 threshold `β_k` only tightens as rounds advance,
//! - the SSP throttle never admits a learner past its clock bound.

#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;

use stellaris_core::GradientMsg;
use stellaris_core::{AggregationRule, ParameterServer, SspThrottle, StalenessSchedule};
use stellaris_envs::ActionSpace;
use stellaris_nn::{ParamSet, Sgd, Tensor};
use stellaris_rl::{PolicyNet, PolicySpec};

fn tiny_policy(seed: u64) -> PolicyNet {
    PolicyNet::new(
        PolicySpec {
            obs_shape: vec![3],
            action_space: ActionSpace::Discrete(2),
            hidden: 4,
        },
        seed,
    )
}

fn grad_msg(policy: &PolicyNet, learner: usize, base: u64) -> GradientMsg {
    GradientMsg {
        learner_id: learner,
        grads: policy
            .params()
            .iter()
            .map(|p| Tensor::full(p.shape(), 0.01))
            .collect(),
        base_version: base,
        batch_len: 8,
        is_ratio: 1.0,
        kl: 0.0,
        surrogate: 0.0,
    }
}

#[test]
fn concurrent_offers_conserve_gradients() {
    loom::model(|| {
        let ps = Arc::new(Mutex::new(ParameterServer::new(
            tiny_policy(0),
            Box::new(Sgd::new(0.01, 0.0)),
            AggregationRule::StalenessAware { d: 0.96, v: 3 },
        )));

        const PER_LEARNER: usize = 3;
        let learners: Vec<_> = (0..2usize)
            .map(|id| {
                let ps = Arc::clone(&ps);
                thread::spawn(move || {
                    for _ in 0..PER_LEARNER {
                        let mut guard = ps.lock().unwrap();
                        let base = guard.clock();
                        let msg = grad_msg(&guard.policy, id, base);
                        guard.offer(msg);
                        drop(guard);
                        thread::yield_now();
                    }
                })
            })
            .collect();

        let driver = {
            let ps = Arc::clone(&ps);
            thread::spawn(move || {
                // Race a round advance against in-flight offers.
                thread::yield_now();
                ps.lock().unwrap().advance_round();
            })
        };

        for h in learners {
            h.join().expect("learner must not panic");
        }
        driver.join().expect("driver must not panic");

        let ps = ps.lock().unwrap();
        let offered = (2 * PER_LEARNER) as u64;
        assert_eq!(
            ps.pending() as u64 + ps.grads_aggregated,
            offered,
            "gradients must be conserved: pending + aggregated == offered"
        );
        assert!(ps.grads_aggregated <= offered);
        assert_eq!(
            ps.staleness_log.recorded(),
            ps.grads_aggregated,
            "every aggregated gradient logs exactly one staleness sample"
        );
        assert!(ps.updates <= ps.grads_aggregated);
        assert_eq!(ps.clock(), ps.updates, "clock advances once per update");
    });
}

#[test]
fn round_advances_only_tighten_the_threshold() {
    loom::model(|| {
        let sched = Arc::new(Mutex::new(StalenessSchedule::new(0.5)));
        sched.lock().unwrap().observe(8); // calibration: δ_max = 8

        let advancer = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || {
                for _ in 0..3 {
                    sched.lock().unwrap().advance_round();
                    thread::yield_now();
                }
            })
        };

        let observer = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || {
                let mut prev = f64::INFINITY;
                for _ in 0..6 {
                    let s = sched.lock().unwrap();
                    if let Some(beta) = s.beta() {
                        assert!(beta > 0.0, "Eq. 3 threshold stays positive");
                        assert!(
                            beta <= prev,
                            "β_k may only tighten as rounds advance: {beta} > {prev}"
                        );
                        prev = beta;
                    }
                    // Whatever the observed β, the admit decision matches it.
                    assert_eq!(s.admits(0.0), true, "zero staleness always admitted");
                    drop(s);
                    thread::yield_now();
                }
            })
        };

        advancer.join().expect("advancer must not panic");
        observer.join().expect("observer must not panic");

        assert_eq!(sched.lock().unwrap().beta(), Some(1.0), "8 · 0.5³ = 1");
    });
}

#[test]
fn ssp_throttle_never_admits_past_the_bound() {
    loom::model(|| {
        const BOUND: u64 = 2;
        let throttle = Arc::new(SspThrottle::new(BOUND));

        // A slow computation pinned at clock 0 defines the oldest in-flight.
        let slow_token = throttle.try_begin(0).expect("empty throttle admits");

        let fast: Vec<_> = [1u64, 2, 5]
            .into_iter()
            .map(|clock| {
                let throttle = Arc::clone(&throttle);
                thread::spawn(move || {
                    let admitted = throttle.try_begin(clock);
                    if let Some(token) = admitted {
                        assert!(
                            clock <= BOUND,
                            "clock {clock} admitted while oldest in-flight is 0"
                        );
                        throttle.end(token);
                    }
                    admitted.is_some()
                })
            })
            .collect();

        let results: Vec<bool> = fast
            .into_iter()
            .map(|h| h.join().expect("learner must not panic"))
            .collect();
        assert!(!results[2], "clock 5 is 3 ahead of 0, beyond bound 2");

        throttle.end(slow_token);
        assert_eq!(throttle.inflight(), 0, "all tokens returned");
    });
}
