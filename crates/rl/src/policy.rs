//! Policy/critic networks per Table II, with actor-side sampling and
//! learner-side differentiable forward passes.
//!
//! A [`PolicyNet`] owns an actor backbone, a critic backbone of the same
//! architecture (as in the paper: "the critic networks share the same
//! architecture as the policy networks") and, for continuous actions, a
//! learnable log-std vector. Snapshots carry a monotonically increasing
//! *version* — the policy clock that staleness is measured against.

use bytes::BytesMut;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stellaris_cache::{Codec, CodecError};
use stellaris_envs::{Action, ActionSpace};
use stellaris_nn::dist;
use stellaris_nn::{bind_params, Activation, Cnn, Graph, Mlp, ParamSet, Tensor, Var};

use crate::trajectory::SampleBatch;

/// Network/task geometry for one environment.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySpec {
    /// Observation geometry (`[d]` or `[c,h,w]`).
    pub obs_shape: Vec<usize>,
    /// Action space.
    pub action_space: ActionSpace,
    /// Hidden width (Table II: 256).
    pub hidden: usize,
}

impl PolicySpec {
    /// Spec for a concrete environment with the paper's hidden width.
    pub fn for_env(env: &dyn stellaris_envs::Env) -> Self {
        Self {
            obs_shape: env.obs_shape(),
            action_space: env.action_space(),
            hidden: 256,
        }
    }

    /// Flattened observation dimension.
    pub fn obs_dim(&self) -> usize {
        self.obs_shape.iter().product()
    }

    /// Actor output width (action dim or logit count).
    pub fn actor_out(&self) -> usize {
        match self.action_space {
            ActionSpace::Discrete(k) => k,
            ActionSpace::Continuous { dim, .. } => dim,
        }
    }

    /// True when observations are images.
    pub fn is_image(&self) -> bool {
        self.obs_shape.len() == 3
    }
}

/// Actor or critic trunk: MLP for vector observations, CNN for images.
// The CNN variant is much larger than the MLP one, but backbones are
// created once per function invocation, never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Backbone {
    /// Table II MuJoCo trunk (2x256, Tanh).
    Mlp(Mlp),
    /// Table II Atari trunk (strided convs + 256 features, ReLU).
    Cnn(Cnn),
}

impl Backbone {
    fn build(spec: &PolicySpec, out: usize, out_gain: f32, rng: &mut ChaCha8Rng) -> Self {
        if spec.is_image() {
            let [c, h, w] = [spec.obs_shape[0], spec.obs_shape[1], spec.obs_shape[2]];
            Backbone::Cnn(Cnn::table2([c, h, w], out, out_gain, rng))
        } else {
            Backbone::Mlp(Mlp::new(
                &[spec.obs_dim(), spec.hidden, spec.hidden, out],
                Activation::Tanh,
                out_gain,
                rng,
            ))
        }
    }

    fn forward(&self, g: &Graph, x: Var, params: &[Var]) -> Var {
        match self {
            Backbone::Mlp(m) => m.forward(g, x, params),
            Backbone::Cnn(c) => c.forward(g, x, params),
        }
    }

    fn forward_plain(&self, x: &Tensor) -> Tensor {
        match self {
            Backbone::Mlp(m) => m.forward_plain(x),
            Backbone::Cnn(c) => c.forward_plain(x),
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        match self {
            Backbone::Mlp(m) => m.params(),
            Backbone::Cnn(c) => c.params(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Backbone::Mlp(m) => m.params_mut(),
            Backbone::Cnn(c) => c.params_mut(),
        }
    }
}

/// Distribution parameters produced by an actor forward pass.
#[derive(Clone, Debug)]
pub enum DistParams {
    /// Diagonal Gaussian: means `[B,A]` plus shared log-stds `[A]`.
    Gaussian {
        /// Per-sample action means.
        mu: Tensor,
        /// Shared log standard deviations.
        log_std: Vec<f32>,
    },
    /// Categorical logits `[B,K]`.
    Categorical {
        /// Per-sample logits.
        logits: Tensor,
    },
}

/// One sampled action with its bookkeeping.
#[derive(Clone, Debug)]
pub struct ActOutput {
    /// The action to execute.
    pub action: Action,
    /// Behaviour log-probability.
    pub logp: f32,
    /// Critic value estimate.
    pub value: f32,
}

/// Differentiable forward-pass products used by the loss builders.
pub struct LossParts {
    /// New-policy log-probs of the batch actions, `[B]`.
    pub logp_new: Var,
    /// Critic values, `[B]`.
    pub value: Var,
    /// Mean entropy, `[1]`.
    pub entropy: Var,
    /// Mean KL(behaviour ‖ new), `[1]`.
    pub kl: Var,
    /// Bound parameter vars, aligned with [`ParamSet::params`] order.
    pub param_vars: Vec<Var>,
}

/// Actor + critic pair with a version clock.
#[derive(Clone, Debug)]
pub struct PolicyNet {
    /// Geometry.
    pub spec: PolicySpec,
    /// Actor trunk.
    pub actor: Backbone,
    /// Critic trunk (same architecture, scalar output).
    pub critic: Backbone,
    /// Learnable log-stds for continuous actions.
    pub log_std: Option<Tensor>,
    /// Policy clock: bumped by the parameter function on every update.
    pub version: u64,
}

impl ParamSet for PolicyNet {
    fn params(&self) -> Vec<&Tensor> {
        let mut p = self.actor.params();
        p.extend(self.critic.params());
        if let Some(ls) = &self.log_std {
            p.push(ls);
        }
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.actor.params_mut();
        p.extend(self.critic.params_mut());
        if let Some(ls) = &mut self.log_std {
            p.push(ls);
        }
        p
    }
}

impl PolicyNet {
    /// Builds a fresh policy for the given spec, seeded deterministically.
    pub fn new(spec: PolicySpec, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let actor = Backbone::build(&spec, spec.actor_out(), 0.01, &mut rng);
        let critic = Backbone::build(&spec, 1, 1.0, &mut rng);
        let log_std = match spec.action_space {
            ActionSpace::Continuous { dim, .. } => Some(Tensor::full(&[dim], -0.5)),
            ActionSpace::Discrete(_) => None,
        };
        Self {
            spec,
            actor,
            critic,
            log_std,
            version: 0,
        }
    }

    /// Number of actor parameter tensors (prefix of [`ParamSet::params`]).
    fn n_actor_params(&self) -> usize {
        self.actor.params().len()
    }

    /// Distribution parameters for a `[B, obs_dim]` observation matrix.
    pub fn dist_params(&self, obs: &Tensor) -> DistParams {
        let out = self.actor.forward_plain(obs);
        match &self.log_std {
            Some(ls) => DistParams::Gaussian {
                mu: out,
                log_std: ls.data().to_vec(),
            },
            None => DistParams::Categorical { logits: out },
        }
    }

    /// Critic values for a `[B, obs_dim]` observation matrix.
    pub fn value_batch(&self, obs: &Tensor) -> Vec<f32> {
        self.critic.forward_plain(obs).into_vec()
    }

    /// Samples one action for a single observation.
    pub fn act(&self, obs: &[f32], rng: &mut ChaCha8Rng) -> ActOutput {
        let x = Tensor::from_vec(obs.to_vec(), &[1, obs.len()]);
        let value = self.value_batch(&x)[0];
        match self.dist_params(&x) {
            DistParams::Gaussian { mu, log_std } => {
                let (a, logp) = dist::sample_gaussian(mu.data(), &log_std, rng);
                ActOutput {
                    action: Action::Continuous(a),
                    logp,
                    value,
                }
            }
            DistParams::Categorical { logits } => {
                let (a, logp) = dist::sample_categorical(logits.data(), rng);
                ActOutput {
                    action: Action::Discrete(a),
                    logp,
                    value,
                }
            }
        }
    }

    /// Greedy action for evaluation.
    pub fn act_greedy(&self, obs: &[f32]) -> Action {
        let x = Tensor::from_vec(obs.to_vec(), &[1, obs.len()]);
        match self.dist_params(&x) {
            DistParams::Gaussian { mu, .. } => Action::Continuous(mu.data().to_vec()),
            DistParams::Categorical { logits } => {
                Action::Discrete(dist::argmax_categorical(logits.data()).0)
            }
        }
    }

    /// Log-probabilities of a batch's actions under *this* policy, without
    /// gradients (used for target networks and V-trace).
    pub fn logp_plain(&self, batch: &SampleBatch) -> Vec<f32> {
        match self.dist_params(&batch.obs) {
            DistParams::Gaussian { mu, log_std } => {
                let actions = batch
                    .actions_cont
                    .as_ref()
                    // lint:allow(A8): wire corruption fails typed decode upstream; a field mismatch here is a producer bug
                    // lint:allow(L1): batch layout is fixed by the rollout worker that built it; a missing field is a producer bug
                    .expect("continuous batch missing actions");
                (0..batch.len())
                    .map(|i| {
                        dist::gaussian_logp_value(mu.row(i).data(), &log_std, actions.row(i).data())
                    })
                    .collect()
            }
            DistParams::Categorical { logits } => batch
                .actions_disc
                .iter()
                .enumerate()
                .map(|(i, &a)| dist::categorical_logp_value(logits.row(i).data(), a))
                .collect(),
        }
    }

    /// Builds the differentiable pieces every surrogate objective needs.
    pub fn loss_parts(&self, g: &Graph, batch: &SampleBatch) -> LossParts {
        let param_vars = bind_params(g, &self.params());
        let n_actor = self.n_actor_params();
        let has_ls = self.log_std.is_some();
        let critic_end = param_vars.len() - usize::from(has_ls);
        let obs = g.input(batch.obs.clone());
        let actor_out = self.actor.forward(g, obs, &param_vars[..n_actor]);
        let value_raw = self
            .critic
            .forward(g, obs, &param_vars[n_actor..critic_end]);
        let b = batch.len();
        let value = g.reshape(value_raw, &[b]);
        let (logp_new, entropy, kl) = if has_ls {
            // lint:allow(A8): has_ls guarantees the log-std var was appended to param_vars
            // lint:allow(L1): has_ls guarantees the log-std var was appended to param_vars
            let ls_var = *param_vars.last().unwrap();
            let actions = batch
                .actions_cont
                .as_ref()
                // lint:allow(A8): wire corruption fails typed decode upstream; a field mismatch here is a producer bug
                // lint:allow(L1): batch layout is fixed by the rollout worker that built it; a missing field is a producer bug
                .expect("continuous batch missing actions");
            let dim = actions.shape()[1];
            let logp = dist::gaussian_log_prob(g, actor_out, ls_var, actions);
            let ent = dist::gaussian_entropy(g, ls_var, dim);
            let mu_old = batch
                .behaviour_mu
                .as_ref()
                // lint:allow(A8): wire corruption fails typed decode upstream; a field mismatch here is a producer bug
                // lint:allow(L1): batch layout is fixed by the rollout worker that built it; a missing field is a producer bug
                .expect("continuous batch missing behaviour means");
            let ls_old = Tensor::from_vec(
                batch
                    .behaviour_log_std
                    .clone()
                    // lint:allow(A8): wire corruption fails typed decode upstream; a field mismatch here is a producer bug
                    // lint:allow(L1): batch layout is fixed by the rollout worker that built it; a missing field is a producer bug
                    .expect("continuous batch missing behaviour log-stds"),
                &[dim],
            );
            let kl = dist::gaussian_kl_mean(g, mu_old, &ls_old, actor_out, ls_var);
            (logp, ent, kl)
        } else {
            let logp = dist::categorical_log_prob(g, actor_out, &batch.actions_disc);
            let ent = dist::categorical_entropy_mean(g, actor_out);
            let old_logits = batch
                .behaviour_logits
                .as_ref()
                // lint:allow(A8): wire corruption fails typed decode upstream; a field mismatch here is a producer bug
                // lint:allow(L1): batch layout is fixed by the rollout worker that built it; a missing field is a producer bug
                .expect("discrete batch missing behaviour logits");
            let kl = dist::categorical_kl_mean(g, old_logits, actor_out);
            (logp, ent, kl)
        };
        LossParts {
            logp_new,
            value,
            entropy,
            kl,
            param_vars,
        }
    }

    /// Mean KL(self ‖ other) over an observation batch — the metric behind
    /// the paper's Fig. 3(c) policy-update characterisation.
    pub fn mean_kl_to(&self, other: &PolicyNet, obs: &Tensor) -> f32 {
        let b = obs.shape()[0];
        match (self.dist_params(obs), other.dist_params(obs)) {
            (
                DistParams::Gaussian {
                    mu: mu_a,
                    log_std: ls_a,
                },
                DistParams::Gaussian {
                    mu: mu_b,
                    log_std: ls_b,
                },
            ) => {
                (0..b)
                    .map(|i| {
                        dist::gaussian_kl_value(
                            mu_a.row(i).data(),
                            &ls_a,
                            mu_b.row(i).data(),
                            &ls_b,
                        )
                    })
                    .sum::<f32>()
                    / b as f32
            }
            (DistParams::Categorical { logits: la }, DistParams::Categorical { logits: lb }) => {
                (0..b)
                    .map(|i| dist::categorical_kl_value(la.row(i).data(), lb.row(i).data()))
                    .sum::<f32>()
                    / b as f32
            }
            // lint:allow(A8): both dist kinds come from the same net type; a mismatch is a caller bug
            // lint:allow(L1): comparing policies over different action spaces is caller error, not a runtime state
            _ => panic!("mean_kl_to: mismatched distribution kinds"),
        }
    }

    /// Serialises weights + version.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot {
            version: self.version,
            flat: self.flatten(),
        }
    }

    /// Loads weights + version from a snapshot (shapes must match).
    pub fn load_snapshot(&mut self, snap: &PolicySnapshot) {
        self.load_flat(&snap.flat);
        self.version = snap.version;
    }
}

/// Flat serialised policy weights with their version clock.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySnapshot {
    /// Policy clock at snapshot time.
    pub version: u64,
    /// Flattened parameters.
    pub flat: Vec<f32>,
}

impl Codec for PolicySnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.version.encode(buf);
        self.flat.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Self {
            version: u64::decode(buf)?,
            flat: Vec::<f32>::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.version.encoded_len() + self.flat.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gae::fill_gae;
    use crate::rollout::RolloutWorker;
    use stellaris_envs::{make_env, EnvConfig, EnvId};

    fn hopper_spec() -> PolicySpec {
        PolicySpec {
            obs_shape: vec![11],
            action_space: ActionSpace::Continuous { dim: 3, bound: 1.0 },
            hidden: 32,
        }
    }

    #[test]
    fn table2_mlp_sizes() {
        let mut env = make_env(EnvId::Hopper, EnvConfig::default());
        env.reset(0);
        let spec = PolicySpec::for_env(env.as_ref());
        assert_eq!(spec.hidden, 256);
        let p = PolicyNet::new(spec, 0);
        match &p.actor {
            Backbone::Mlp(m) => {
                assert_eq!(m.layers[0].w.shape(), &[11, 256]);
                assert_eq!(m.layers[1].w.shape(), &[256, 256]);
                assert_eq!(m.out_dim(), 3);
            }
            Backbone::Cnn(_) => panic!("Hopper should use an MLP"),
        }
    }

    #[test]
    fn act_produces_valid_output() {
        let p = PolicyNet::new(hopper_spec(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = p.act(&[0.1; 11], &mut rng);
        match out.action {
            Action::Continuous(a) => assert_eq!(a.len(), 3),
            Action::Discrete(_) => panic!("wrong action kind"),
        }
        assert!(out.logp.is_finite());
        assert!(out.value.is_finite());
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let mut a = PolicyNet::new(hopper_spec(), 1);
        a.version = 42;
        let snap = a.snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(snap.encoded_len(), bytes.len());
        let snap2 = PolicySnapshot::from_bytes(&bytes).unwrap();
        let mut b = PolicyNet::new(hopper_spec(), 999);
        b.load_snapshot(&snap2);
        assert_eq!(b.version, 42);
        let obs = Tensor::ones(&[2, 11]);
        assert!(a.mean_kl_to(&b, &obs).abs() < 1e-6);
    }

    #[test]
    fn kl_between_different_seeds_is_positive() {
        let a = PolicyNet::new(hopper_spec(), 1);
        let b = PolicyNet::new(hopper_spec(), 2);
        let obs = Tensor::ones(&[4, 11]);
        assert!(a.mean_kl_to(&b, &obs) > 0.0);
        assert!(a.mean_kl_to(&a, &obs).abs() < 1e-7);
    }

    #[test]
    fn logp_plain_matches_loss_parts() {
        let p = PolicyNet::new(hopper_spec(), 3);
        let mut env = make_env(EnvId::Hopper, EnvConfig::tiny());
        env.reset(0);
        let mut worker = RolloutWorker::new(env, 5);
        let mut batch = worker.collect(&p, 16);
        fill_gae(&mut batch, 0.99, 0.95);
        let plain = p.logp_plain(&batch);
        let g = Graph::new();
        let parts = p.loss_parts(&g, &batch);
        let graph_logp = g.value(parts.logp_new);
        for (a, b) in plain.iter().zip(graph_logp.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Behaviour logp recorded at sampling time must also agree (same policy).
        for (a, b) in plain.iter().zip(batch.behaviour_logp.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn discrete_policy_loss_parts() {
        let mut env = make_env(EnvId::ChainMdp, EnvConfig::tiny());
        env.reset(0);
        let mut spec = PolicySpec::for_env(env.as_ref());
        spec.hidden = 16;
        let p = PolicyNet::new(spec, 0);
        let mut worker = RolloutWorker::new(env, 9);
        let mut batch = worker.collect(&p, 12);
        fill_gae(&mut batch, 0.99, 0.95);
        let g = Graph::new();
        let parts = p.loss_parts(&g, &batch);
        assert_eq!(g.shape_of(parts.logp_new), vec![12]);
        assert_eq!(g.shape_of(parts.value), vec![12]);
        assert!(g.value(parts.entropy).data()[0] > 0.0);
        assert!(
            g.value(parts.kl).data()[0].abs() < 1e-4,
            "same policy -> ~0 KL"
        );
    }
}
