//! Trajectory containers: the sample batches actors publish to the cache
//! and learners consume for gradient computation.

use bytes::{BufMut, BytesMut};
use stellaris_cache::{Codec, CodecError};
use stellaris_nn::Tensor;

/// A batch of `T` consecutive transitions collected by one actor under one
/// behaviour policy, plus everything a learner needs to reconstruct the
/// behaviour distribution (for importance sampling and KL penalties).
#[derive(Clone, Debug, PartialEq)]
pub struct SampleBatch {
    /// Environment name.
    pub env: String,
    /// Observations, `[T, obs_dim]`.
    pub obs: Tensor,
    /// Discrete actions (empty for continuous tasks).
    pub actions_disc: Vec<usize>,
    /// Continuous actions, `[T, act_dim]` (absent for discrete tasks).
    pub actions_cont: Option<Tensor>,
    /// Per-step rewards.
    pub rewards: Vec<f32>,
    /// Episode-termination flags.
    pub dones: Vec<bool>,
    /// Behaviour-policy log-probabilities of the taken actions.
    pub behaviour_logp: Vec<f32>,
    /// Behaviour-policy value estimates `V(s_t)`.
    pub values: Vec<f32>,
    /// Value estimate for the state after the last transition (bootstrap).
    pub bootstrap_value: f32,
    /// GAE advantages (filled by [`crate::gae::fill_gae`]).
    pub advantages: Vec<f32>,
    /// Discounted return targets.
    pub returns: Vec<f32>,
    /// Behaviour Gaussian means `[T, act_dim]` (continuous only).
    pub behaviour_mu: Option<Tensor>,
    /// Behaviour Gaussian log-stds `[act_dim]` (continuous only).
    pub behaviour_log_std: Option<Vec<f32>>,
    /// Behaviour categorical logits `[T, K]` (discrete only).
    pub behaviour_logits: Option<Tensor>,
    /// Policy clock (version) the sampling actor used — the basis of the
    /// staleness computation in §V-C.
    pub policy_version: u64,
    /// Episodic returns of episodes completed inside this batch.
    pub episode_returns: Vec<f32>,
}

impl SampleBatch {
    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// True when the batch holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    /// True for continuous-action batches.
    pub fn is_continuous(&self) -> bool {
        self.actions_cont.is_some()
    }

    /// Splits into contiguous minibatches of at most `size` transitions
    /// (the learner-side mini-batch `b` in Theorem 1).
    pub fn minibatches(&self, size: usize) -> Vec<SampleBatch> {
        assert!(size > 0, "minibatch size must be positive");
        let t = self.len();
        let obs_dim = self.obs.shape()[1];
        let mut out = Vec::new();
        let mut start = 0;
        while start < t {
            let end = (start + size).min(t);
            let rows = end - start;
            let slice_rows = |m: &Tensor| {
                let w = m.shape()[1];
                Tensor::from_vec(m.data()[start * w..end * w].to_vec(), &[rows, w])
            };
            out.push(SampleBatch {
                env: self.env.clone(),
                obs: {
                    Tensor::from_vec(
                        self.obs.data()[start * obs_dim..end * obs_dim].to_vec(),
                        &[rows, obs_dim],
                    )
                },
                actions_disc: self
                    .actions_disc
                    .get(start..end.min(self.actions_disc.len()))
                    .unwrap_or(&[])
                    .to_vec(),
                actions_cont: self.actions_cont.as_ref().map(&slice_rows),
                rewards: self.rewards[start..end].to_vec(),
                dones: self.dones[start..end].to_vec(),
                behaviour_logp: self.behaviour_logp[start..end].to_vec(),
                values: self.values[start..end].to_vec(),
                bootstrap_value: if end == t {
                    self.bootstrap_value
                } else {
                    self.values[end]
                },
                advantages: self.advantages.get(start..end).unwrap_or(&[]).to_vec(),
                returns: self.returns.get(start..end).unwrap_or(&[]).to_vec(),
                behaviour_mu: self.behaviour_mu.as_ref().map(&slice_rows),
                behaviour_log_std: self.behaviour_log_std.clone(),
                behaviour_logits: self.behaviour_logits.as_ref().map(&slice_rows),
                policy_version: self.policy_version,
                episode_returns: Vec::new(),
            });
            start = end;
        }
        out
    }

    /// Normalises advantages to zero mean / unit variance (standard PPO
    /// practice; keeps surrogate magnitudes comparable across learners).
    pub fn normalize_advantages(&mut self) {
        let n = self.advantages.len();
        if n < 2 {
            return;
        }
        let mean: f32 = self.advantages.iter().sum::<f32>() / n as f32;
        let var: f32 = self
            .advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / n as f32;
        let std = var.sqrt().max(1e-6);
        for a in &mut self.advantages {
            *a = (*a - mean) / std;
        }
    }
}

impl Codec for SampleBatch {
    fn encode(&self, buf: &mut BytesMut) {
        self.env.encode(buf);
        self.obs.encode(buf);
        self.actions_disc.encode(buf);
        self.actions_cont.encode(buf);
        self.rewards.encode(buf);
        // Same wire layout as `Vec<u64>`, written directly: encode sits on
        // the exact-reserve hot path, so widening `dones` must not
        // materialise a temporary vector (A9).
        (self.dones.len() as u32).encode(buf);
        for &d in &self.dones {
            buf.put_u64_le(u64::from(d));
        }
        self.behaviour_logp.encode(buf);
        self.values.encode(buf);
        self.bootstrap_value.encode(buf);
        self.advantages.encode(buf);
        self.returns.encode(buf);
        self.behaviour_mu.encode(buf);
        self.behaviour_log_std.encode(buf);
        self.behaviour_logits.encode(buf);
        self.policy_version.encode(buf);
        self.episode_returns.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(SampleBatch {
            env: String::decode(buf)?,
            obs: Tensor::decode(buf)?,
            actions_disc: Vec::<usize>::decode(buf)?,
            actions_cont: Option::<Tensor>::decode(buf)?,
            rewards: Vec::<f32>::decode(buf)?,
            dones: Vec::<u64>::decode(buf)?
                .into_iter()
                .map(|d| d != 0)
                .collect(),
            behaviour_logp: Vec::<f32>::decode(buf)?,
            values: Vec::<f32>::decode(buf)?,
            bootstrap_value: f32::decode(buf)?,
            advantages: Vec::<f32>::decode(buf)?,
            returns: Vec::<f32>::decode(buf)?,
            behaviour_mu: Option::<Tensor>::decode(buf)?,
            behaviour_log_std: Option::<Vec<f32>>::decode(buf)?,
            behaviour_logits: Option::<Tensor>::decode(buf)?,
            policy_version: u64::decode(buf)?,
            episode_returns: Vec::<f32>::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.env.encoded_len()
            + self.obs.encoded_len()
            + self.actions_disc.encoded_len()
            + self.actions_cont.encoded_len()
            + self.rewards.encoded_len()
            + (4 + self.dones.len() * 8) // dones travel widened to Vec<u64>
            + self.behaviour_logp.encoded_len()
            + self.values.encoded_len()
            + self.bootstrap_value.encoded_len()
            + self.advantages.encoded_len()
            + self.returns.encoded_len()
            + self.behaviour_mu.encoded_len()
            + self.behaviour_log_std.encoded_len()
            + self.behaviour_logits.encoded_len()
            + self.policy_version.encoded_len()
            + self.episode_returns.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn dummy_batch(t: usize, obs_dim: usize, continuous: bool) -> SampleBatch {
        SampleBatch {
            env: "Test".into(),
            obs: Tensor::from_vec((0..t * obs_dim).map(|x| x as f32).collect(), &[t, obs_dim]),
            actions_disc: if continuous {
                vec![]
            } else {
                (0..t).map(|i| i % 3).collect()
            },
            actions_cont: continuous.then(|| Tensor::ones(&[t, 2])),
            rewards: (0..t).map(|i| i as f32).collect(),
            dones: (0..t).map(|i| i == t - 1).collect(),
            behaviour_logp: vec![-0.5; t],
            values: vec![1.0; t],
            bootstrap_value: 0.5,
            advantages: (0..t).map(|i| i as f32 - 1.0).collect(),
            returns: vec![2.0; t],
            behaviour_mu: continuous.then(|| Tensor::zeros(&[t, 2])),
            behaviour_log_std: continuous.then(|| vec![0.0, 0.0]),
            behaviour_logits: (!continuous).then(|| Tensor::zeros(&[t, 3])),
            policy_version: 7,
            episode_returns: vec![12.0],
        }
    }

    #[test]
    fn codec_roundtrip_continuous() {
        let b = dummy_batch(5, 3, true);
        let back = SampleBatch::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn codec_roundtrip_discrete() {
        let b = dummy_batch(4, 2, false);
        let back = SampleBatch::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn encoded_len_is_exact() {
        for b in [dummy_batch(5, 3, true), dummy_batch(4, 2, false)] {
            assert_eq!(b.encoded_len(), b.to_bytes().len());
        }
    }

    #[test]
    fn minibatches_cover_all_rows() {
        let b = dummy_batch(10, 3, true);
        let mbs = b.minibatches(4);
        assert_eq!(mbs.len(), 3);
        assert_eq!(mbs.iter().map(SampleBatch::len).sum::<usize>(), 10);
        assert_eq!(mbs[0].len(), 4);
        assert_eq!(mbs[2].len(), 2);
        // Bootstrap of inner minibatches is the next state's value.
        assert_eq!(mbs[0].bootstrap_value, b.values[4]);
        assert_eq!(mbs[2].bootstrap_value, b.bootstrap_value);
        // Obs rows preserved.
        assert_eq!(mbs[1].obs.data()[0], b.obs.data()[4 * 3]);
    }

    #[test]
    fn normalize_advantages_standardises() {
        let mut b = dummy_batch(50, 2, true);
        b.advantages = (0..50).map(|i| i as f32).collect();
        b.normalize_advantages();
        let mean: f32 = b.advantages.iter().sum::<f32>() / 50.0;
        let var: f32 = b.advantages.iter().map(|a| a * a).sum::<f32>() / 50.0 - mean * mean;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn empty_and_len() {
        let b = dummy_batch(3, 2, false);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(!b.is_continuous());
    }
}
