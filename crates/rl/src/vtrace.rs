//! V-trace off-policy correction (Espeholt et al., IMPALA), the advantage
//! estimator IMPACT builds on (§VIII-B: "V-trace importance sampling").

/// Inputs to the V-trace computation for one trajectory slice.
pub struct VtraceInput<'a> {
    /// Behaviour-policy log-probs of the taken actions.
    pub behaviour_logp: &'a [f32],
    /// Target-policy log-probs of the same actions.
    pub target_logp: &'a [f32],
    /// Rewards.
    pub rewards: &'a [f32],
    /// Current value estimates `V(s_t)` under the target critic.
    pub values: &'a [f32],
    /// Episode-termination flags.
    pub dones: &'a [bool],
    /// Bootstrap value for the state after the last transition.
    pub bootstrap_value: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Truncation level ρ̄ for the TD correction weight.
    pub rho_bar: f32,
    /// Truncation level c̄ for the trace-cutting weight.
    pub c_bar: f32,
}

/// V-trace outputs: value targets `vs` and policy-gradient advantages.
#[derive(Clone, Debug, PartialEq)]
pub struct VtraceOutput {
    /// Corrected value targets `v_s`.
    pub vs: Vec<f32>,
    /// Policy-gradient advantages `ρ_t (r_t + γ v_{s+1} - V(s_t))`.
    pub advantages: Vec<f32>,
}

/// Computes V-trace targets with the standard backward recursion.
pub fn vtrace(input: &VtraceInput<'_>) -> VtraceOutput {
    let t = input.rewards.len();
    assert_eq!(input.behaviour_logp.len(), t, "logp length mismatch");
    assert_eq!(input.target_logp.len(), t, "logp length mismatch");
    assert_eq!(input.values.len(), t, "values length mismatch");
    assert_eq!(input.dones.len(), t, "dones length mismatch");

    let rhos: Vec<f32> = input
        .target_logp
        .iter()
        .zip(input.behaviour_logp.iter())
        .map(|(&tp, &bp)| (tp - bp).exp())
        .collect();
    let clipped_rho: Vec<f32> = rhos.iter().map(|&r| r.min(input.rho_bar)).collect();
    let clipped_c: Vec<f32> = rhos.iter().map(|&r| r.min(input.c_bar)).collect();

    let mut vs = vec![0.0f32; t];
    let mut acc = 0.0f32; // vs_{t+1} - V_{t+1}
    for i in (0..t).rev() {
        let not_done = if input.dones[i] { 0.0 } else { 1.0 };
        let next_value = if i + 1 < t {
            input.values[i + 1]
        } else {
            input.bootstrap_value
        };
        let delta = clipped_rho[i]
            * (input.rewards[i] + input.gamma * next_value * not_done - input.values[i]);
        acc = delta + input.gamma * clipped_c[i] * not_done * acc;
        vs[i] = input.values[i] + acc;
    }

    let advantages: Vec<f32> = (0..t)
        .map(|i| {
            let not_done = if input.dones[i] { 0.0 } else { 1.0 };
            let vs_next = if i + 1 < t {
                vs[i + 1]
            } else {
                input.bootstrap_value
            };
            clipped_rho[i] * (input.rewards[i] + input.gamma * vs_next * not_done - input.values[i])
        })
        .collect();

    VtraceOutput { vs, advantages }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_policy_input<'a>(
        rewards: &'a [f32],
        values: &'a [f32],
        dones: &'a [bool],
        logp: &'a [f32],
        bootstrap: f32,
    ) -> VtraceInput<'a> {
        VtraceInput {
            behaviour_logp: logp,
            target_logp: logp,
            rewards,
            values,
            dones,
            bootstrap_value: bootstrap,
            gamma: 0.99,
            rho_bar: 1.0,
            c_bar: 1.0,
        }
    }

    #[test]
    fn on_policy_vtrace_equals_n_step_return() {
        // When behaviour == target (ρ = c = 1), vs is the n-step TD(1) return.
        let rewards = [1.0, 1.0, 1.0];
        let values = [0.0, 0.0, 0.0];
        let dones = [false, false, true];
        let logp = [-0.3, -0.3, -0.3];
        let out = vtrace(&on_policy_input(&rewards, &values, &dones, &logp, 0.0));
        let g = 0.99f32;
        let want0 = 1.0 + g * (1.0 + g * 1.0);
        assert!((out.vs[0] - want0).abs() < 1e-4, "{} vs {want0}", out.vs[0]);
        assert!((out.vs[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rho_clipping_bounds_update() {
        // Target much more likely than behaviour: ρ huge, must clip to rho_bar.
        let rewards = [1.0];
        let values = [0.0];
        let dones = [true];
        let input = VtraceInput {
            behaviour_logp: &[-5.0],
            target_logp: &[0.0],
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: 0.0,
            gamma: 0.99,
            rho_bar: 1.0,
            c_bar: 1.0,
        };
        let out = vtrace(&input);
        assert!((out.vs[0] - 1.0).abs() < 1e-5, "clipped delta = 1 * reward");
        assert!((out.advantages[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn low_rho_shrinks_correction() {
        // Target much *less* likely: ρ ≈ 0, so the target barely moves V.
        let rewards = [10.0];
        let values = [2.0];
        let dones = [true];
        let input = VtraceInput {
            behaviour_logp: &[0.0],
            target_logp: &[-8.0],
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: 0.0,
            gamma: 0.99,
            rho_bar: 1.0,
            c_bar: 1.0,
        };
        let out = vtrace(&input);
        assert!(
            (out.vs[0] - 2.0).abs() < 0.01,
            "vs ~ V when rho ~ 0: {}",
            out.vs[0]
        );
    }

    #[test]
    fn done_stops_trace_propagation() {
        let rewards = [0.0, 5.0];
        let values = [1.0, 1.0];
        let dones = [true, false];
        let logp = [-0.1, -0.1];
        let out = vtrace(&on_policy_input(&rewards, &values, &dones, &logp, 0.0));
        // Step 0 terminal: vs[0] = V + ρ(r - V) = 1 + (0 - 1) = 0, no leak from step 1.
        assert!((out.vs[0] - 0.0).abs() < 1e-5, "{}", out.vs[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let input = VtraceInput {
            behaviour_logp: &[0.0],
            target_logp: &[0.0, 0.0],
            rewards: &[1.0],
            values: &[0.0],
            dones: &[false],
            bootstrap_value: 0.0,
            gamma: 0.99,
            rho_bar: 1.0,
            c_bar: 1.0,
        };
        let _ = vtrace(&input);
    }
}
