//! Policy checkpointing: persist snapshots to disk and restore them, so
//! long trainings survive restarts and trained policies can be shipped to
//! evaluation jobs (the file-system analogue of the cache's policy key).

use std::fs;
use std::io;
use std::path::Path;

use stellaris_cache::Codec;

use crate::policy::{PolicyNet, PolicySnapshot};

/// Magic header guarding against loading unrelated files.
const MAGIC: &[u8; 8] = b"STLRCKP1";

/// Writes a policy snapshot to `path` (atomically via a temp file).
pub fn save_policy(policy: &PolicyNet, path: &Path) -> io::Result<()> {
    let snap = policy.snapshot();
    let mut buf = Vec::with_capacity(snap.flat.len() * 4 + 64);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&snap.to_bytes());
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path)
}

/// Loads a snapshot from `path` into an architecture-compatible policy.
pub fn load_policy(policy: &mut PolicyNet, path: &Path) -> io::Result<()> {
    let bytes = fs::read(path)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a Stellaris checkpoint (bad magic)",
        ));
    }
    let snap = PolicySnapshot::from_bytes(&bytes[MAGIC.len()..])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    use stellaris_nn::ParamSet;
    if snap.flat.len() != policy.num_scalars() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint has {} scalars but the policy expects {}",
                snap.flat.len(),
                policy.num_scalars()
            ),
        ));
    }
    policy.load_snapshot(&snap);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use stellaris_envs::ActionSpace;
    use stellaris_nn::Tensor;

    fn spec(hidden: usize) -> PolicySpec {
        PolicySpec {
            obs_shape: vec![5],
            action_space: ActionSpace::Discrete(3),
            hidden,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("stellaris_ckpt_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_weights_and_version() {
        let path = tmp("roundtrip");
        let mut policy = PolicyNet::new(spec(12), 1);
        policy.version = 99;
        save_policy(&policy, &path).unwrap();
        let mut restored = PolicyNet::new(spec(12), 777);
        load_policy(&mut restored, &path).unwrap();
        assert_eq!(restored.version, 99);
        let obs = Tensor::ones(&[2, 5]);
        assert!(policy.mean_kl_to(&restored, &obs) < 1e-7);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage");
        fs::write(&path, b"definitely not a checkpoint").unwrap();
        let mut policy = PolicyNet::new(spec(8), 0);
        let err = load_policy(&mut policy, &path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let path = tmp("mismatch");
        let small = PolicyNet::new(spec(8), 1);
        save_policy(&small, &path).unwrap();
        let mut big = PolicyNet::new(spec(64), 1);
        let err = load_policy(&mut big, &path).unwrap_err();
        assert!(err.to_string().contains("scalars"));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_not_found() {
        let mut policy = PolicyNet::new(spec(8), 0);
        let err = load_policy(&mut policy, Path::new("/nonexistent/ckpt")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
