//! Actor-side rollout collection: stepping environments under the current
//! policy and packaging transitions into [`SampleBatch`]es (workflow Step ①
//! of the paper: importance-sampling-driven trajectory collection).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stellaris_envs::Env;
use stellaris_nn::Tensor;

use crate::policy::{DistParams, PolicyNet};
use crate::trajectory::SampleBatch;

/// A persistent actor: owns one environment and carries episode state
/// across [`RolloutWorker::collect`] calls.
pub struct RolloutWorker {
    env: Box<dyn Env>,
    obs: Vec<f32>,
    ep_return: f32,
    next_seed: u64,
    rng: ChaCha8Rng,
    /// Total environment steps taken by this worker.
    pub total_steps: u64,
}

impl RolloutWorker {
    /// Creates a worker; `seed` derives both episode seeds and action noise.
    pub fn new(mut env: Box<dyn Env>, seed: u64) -> Self {
        let obs = env.reset(seed);
        Self {
            env,
            obs,
            ep_return: 0.0,
            next_seed: seed.wrapping_mul(6364136223846793005).wrapping_add(1),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15),
            total_steps: 0,
        }
    }

    /// Environment name.
    pub fn env_name(&self) -> &'static str {
        self.env.name()
    }

    /// Collects `steps` transitions under `policy`, returning a batch with
    /// the behaviour-distribution parameters needed for importance sampling
    /// downstream. Advantages/returns are left for the data loader to fill.
    pub fn collect(&mut self, policy: &PolicyNet, steps: usize) -> SampleBatch {
        assert!(steps > 0, "collect needs at least one step");
        let _span = stellaris_telemetry::span_with(
            "rl.rollout_collect",
            vec![("steps", steps.into()), ("env", self.env.name().into())],
        );
        let obs_dim = self.env.obs_dim();
        let continuous = !self.env.action_space().is_discrete();
        let mut obs_rows: Vec<f32> = Vec::with_capacity(steps * obs_dim);
        let mut actions_disc = Vec::new();
        let mut actions_cont: Vec<f32> = Vec::new();
        let mut rewards = Vec::with_capacity(steps);
        let mut dones = Vec::with_capacity(steps);
        let mut logps = Vec::with_capacity(steps);
        let mut values = Vec::with_capacity(steps);
        let mut episode_returns = Vec::new();

        for _ in 0..steps {
            obs_rows.extend_from_slice(&self.obs);
            let out = policy.act(&self.obs, &mut self.rng);
            let step = self.env.step(&out.action);
            self.total_steps += 1;
            match &out.action {
                stellaris_envs::Action::Discrete(a) => actions_disc.push(*a),
                stellaris_envs::Action::Continuous(a) => actions_cont.extend_from_slice(a),
            }
            rewards.push(step.reward);
            dones.push(step.done);
            logps.push(out.logp);
            values.push(out.value);
            self.ep_return += step.reward;
            if step.done {
                episode_returns.push(self.ep_return);
                self.ep_return = 0.0;
                self.obs = self.env.reset(self.next_seed);
                self.next_seed = self
                    .next_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1);
            } else {
                self.obs = step.obs;
            }
        }

        let obs = Tensor::from_vec(obs_rows, &[steps, obs_dim]);
        // Behaviour distribution parameters over the whole batch in one pass.
        let (behaviour_mu, behaviour_log_std, behaviour_logits) = match policy.dist_params(&obs) {
            DistParams::Gaussian { mu, log_std } => (Some(mu), Some(log_std), None),
            DistParams::Categorical { logits } => (None, None, Some(logits)),
        };
        let bootstrap_value = if dones.last().copied().unwrap_or(true) {
            // Terminal (or degenerate empty) rollout: nothing to bootstrap.
            0.0
        } else {
            let last = Tensor::from_vec(self.obs.clone(), &[1, obs_dim]);
            policy.value_batch(&last)[0]
        };

        SampleBatch {
            env: self.env.name().to_owned(),
            obs,
            actions_disc,
            actions_cont: continuous.then(|| {
                let a = self.env.action_space().dim();
                Tensor::from_vec(actions_cont, &[steps, a])
            }),
            rewards,
            dones,
            behaviour_logp: logps,
            values,
            bootstrap_value,
            advantages: Vec::new(),
            returns: Vec::new(),
            behaviour_mu,
            behaviour_log_std,
            behaviour_logits,
            policy_version: policy.version,
            episode_returns,
        }
    }
}

/// Runs `episodes` evaluation episodes (stochastic policy, fresh seeds) and
/// returns the mean episodic return — the paper's "episodic reward" metric.
pub fn evaluate(policy: &PolicyNet, env: &mut dyn Env, episodes: usize, seed: u64) -> f32 {
    let _span = stellaris_telemetry::span_with(
        "rl.evaluate",
        vec![("episodes", episodes.into()), ("env", env.name().into())],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut total = 0.0f32;
    for ep in 0..episodes {
        let mut obs = env.reset(seed.wrapping_add(ep as u64 * 7919));
        loop {
            let out = policy.act(&obs, &mut rng);
            let step = env.step(&out.action);
            total += step.reward;
            if step.done {
                break;
            }
            obs = step.obs;
        }
    }
    total / episodes.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use stellaris_envs::{make_env, EnvConfig, EnvId};

    fn small_policy(id: EnvId) -> PolicyNet {
        let mut env = make_env(id, EnvConfig::tiny());
        env.reset(0);
        let mut spec = PolicySpec::for_env(env.as_ref());
        spec.hidden = 16;
        PolicyNet::new(spec, 0)
    }

    #[test]
    fn collect_shapes_continuous() {
        let policy = small_policy(EnvId::PointMass);
        let mut w = RolloutWorker::new(make_env(EnvId::PointMass, EnvConfig::tiny()), 1);
        let b = w.collect(&policy, 20);
        assert_eq!(b.len(), 20);
        assert_eq!(b.obs.shape(), &[20, 6]);
        assert_eq!(b.actions_cont.as_ref().unwrap().shape(), &[20, 2]);
        assert!(b.behaviour_mu.is_some());
        assert!(b.behaviour_logits.is_none());
        assert_eq!(b.policy_version, 0);
        assert_eq!(w.total_steps, 20);
    }

    #[test]
    fn collect_shapes_discrete() {
        let policy = small_policy(EnvId::ChainMdp);
        let mut w = RolloutWorker::new(make_env(EnvId::ChainMdp, EnvConfig::tiny()), 1);
        let b = w.collect(&policy, 15);
        assert_eq!(b.actions_disc.len(), 15);
        assert!(b.behaviour_logits.is_some());
        assert!(b.actions_cont.is_none());
    }

    #[test]
    fn episodes_roll_over_between_collects() {
        let policy = small_policy(EnvId::ChainMdp);
        // tiny max_steps = 80; collect 200 steps so episodes complete.
        let mut w = RolloutWorker::new(make_env(EnvId::ChainMdp, EnvConfig::tiny()), 3);
        let b1 = w.collect(&policy, 100);
        let b2 = w.collect(&policy, 100);
        let finished = b1.episode_returns.len() + b2.episode_returns.len();
        assert!(finished >= 2, "episodes should complete: {finished}");
    }

    #[test]
    fn bootstrap_zero_at_episode_end() {
        let policy = small_policy(EnvId::ChainMdp);
        let mut w = RolloutWorker::new(make_env(EnvId::ChainMdp, EnvConfig::tiny()), 3);
        // tiny cap = 80 steps: collect exactly to a boundary.
        let b = w.collect(&policy, 80);
        assert!(*b.dones.last().unwrap());
        assert_eq!(b.bootstrap_value, 0.0);
    }

    #[test]
    fn evaluate_returns_finite_mean() {
        let policy = small_policy(EnvId::PointMass);
        let mut env = make_env(EnvId::PointMass, EnvConfig::tiny());
        let r = evaluate(&policy, env.as_mut(), 3, 0);
        assert!(r.is_finite());
        assert!(r < 0.0, "PointMass rewards are negative distances");
    }

    #[test]
    fn deterministic_collect_given_same_seed_and_policy() {
        let policy = small_policy(EnvId::PointMass);
        let mut w1 = RolloutWorker::new(make_env(EnvId::PointMass, EnvConfig::tiny()), 5);
        let mut w2 = RolloutWorker::new(make_env(EnvId::PointMass, EnvConfig::tiny()), 5);
        let b1 = w1.collect(&policy, 30);
        let b2 = w2.collect(&policy, 30);
        assert_eq!(b1.obs, b2.obs);
        assert_eq!(b1.rewards, b2.rewards);
        assert_eq!(b1.behaviour_logp, b2.behaviour_logp);
    }
}
