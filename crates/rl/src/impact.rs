//! IMPACT (Luo et al., ICLR'20): the paper's off-policy baseline —
//! importance-weighted asynchronous training with a clipped *target
//! network* ratio and V-trace advantage correction (§VIII-B).
//!
//! The actor samples under a (possibly stale) behaviour policy; gradients
//! clip the ratio between the learner policy and a slowly updated surrogate
//! target network, while V-trace corrects the value targets for the
//! behaviour/target mismatch.

use stellaris_nn::{clip_grad_norm, Graph, Tensor};

use crate::policy::PolicyNet;
use crate::ppo::LossStats;
use crate::trajectory::SampleBatch;
use crate::vtrace::{vtrace, VtraceInput};

/// IMPACT hyperparameters (Table III column "IMPACT").
#[derive(Clone, Copy, Debug)]
pub struct ImpactConfig {
    /// Base learning rate `α_0`.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Surrogate clip parameter ε.
    pub clip: f32,
    /// KL penalty coefficient.
    pub kl_coeff: f32,
    /// KL target.
    pub kl_target: f32,
    /// Entropy bonus coefficient.
    pub entropy_coeff: f32,
    /// Value-function loss coefficient.
    pub vf_coeff: f32,
    /// Target network update frequency in policy updates.
    pub target_update_freq: u64,
    /// V-trace ρ̄.
    pub rho_bar: f32,
    /// V-trace c̄.
    pub c_bar: f32,
    /// Train batch size for MuJoCo tasks.
    pub batch_mujoco: usize,
    /// Train batch size for Atari tasks.
    pub batch_atari: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl ImpactConfig {
    /// The exact Table III values.
    pub fn paper() -> Self {
        Self {
            lr: 0.0005,
            gamma: 0.99,
            clip: 0.4,
            kl_coeff: 1.0,
            kl_target: 0.01,
            entropy_coeff: 0.01,
            vf_coeff: 1.0,
            target_update_freq: 1,
            rho_bar: 1.0,
            c_bar: 1.0,
            batch_mujoco: 4096,
            batch_atari: 256,
            grad_clip: 0.5,
        }
    }

    /// Laptop-scale variant (smaller batches, hotter lr).
    pub fn scaled() -> Self {
        Self {
            lr: 1e-3,
            batch_mujoco: 512,
            batch_atari: 128,
            ..Self::paper()
        }
    }
}

/// The learner state IMPACT carries between updates: the live policy plus
/// the surrogate target network it clips against.
pub struct ImpactLearner {
    /// Target-network weights (flat) and the version they were taken at.
    pub target_flat: Vec<f32>,
    /// Updates since the target was refreshed.
    pub since_refresh: u64,
}

impl ImpactLearner {
    /// Initialises the target as a copy of the live policy.
    pub fn new(policy: &PolicyNet) -> Self {
        use stellaris_nn::ParamSet;
        Self {
            target_flat: policy.flatten(),
            since_refresh: 0,
        }
    }

    /// Refreshes the target from the live policy if due.
    pub fn maybe_refresh(&mut self, policy: &PolicyNet, cfg: &ImpactConfig) {
        self.since_refresh += 1;
        if self.since_refresh >= cfg.target_update_freq {
            use stellaris_nn::ParamSet;
            self.target_flat = policy.flatten();
            self.since_refresh = 0;
        }
    }

    /// Materialises the target network.
    pub fn target_net(&self, like: &PolicyNet) -> PolicyNet {
        use stellaris_nn::ParamSet;
        let mut t = like.clone();
        t.load_flat(&self.target_flat);
        t
    }
}

/// Computes IMPACT gradients for one mini-batch.
///
/// `ratio_cap` injects Stellaris' global importance-sampling truncation,
/// exactly as in [`crate::ppo::ppo_gradients`].
pub fn impact_gradients(
    policy: &PolicyNet,
    target: &PolicyNet,
    batch: &SampleBatch,
    cfg: &ImpactConfig,
    ratio_cap: Option<f32>,
) -> (Vec<Tensor>, LossStats) {
    assert!(
        !batch.is_empty(),
        "cannot compute gradients on an empty batch"
    );
    let b = batch.len();
    // V-trace off-policy correction between behaviour and target policies.
    let target_logp = target.logp_plain(batch);
    let vt = vtrace(&VtraceInput {
        behaviour_logp: &batch.behaviour_logp,
        target_logp: &target_logp,
        rewards: &batch.rewards,
        values: &batch.values,
        dones: &batch.dones,
        bootstrap_value: batch.bootstrap_value,
        gamma: cfg.gamma,
        rho_bar: cfg.rho_bar,
        c_bar: cfg.c_bar,
    });
    // Normalise V-trace advantages for scale stability.
    let mut adv = vt.advantages;
    let mean: f32 = adv.iter().sum::<f32>() / b as f32;
    let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / b as f32;
    let std = var.sqrt().max(1e-6);
    for a in &mut adv {
        *a = (*a - mean) / std;
    }

    let g = Graph::new();
    let parts = policy.loss_parts(&g, batch);

    // IMPACT ratio: live policy vs the surrogate target network.
    let target_lp = g.input(Tensor::from_vec(target_logp, &[b]));
    let diff = g.clamp(g.sub(parts.logp_new, target_lp), -20.0, 20.0);
    let ratio = g.exp(diff);
    let ratio_used = match ratio_cap {
        Some(cap) => g.min_scalar(ratio, cap),
        None => ratio,
    };

    let adv_c = g.input(Tensor::from_vec(adv, &[b]));
    let s1 = g.mul(ratio_used, adv_c);
    let clipped = g.clamp(ratio_used, 1.0 - cfg.clip, 1.0 + cfg.clip);
    let s2 = g.mul(clipped, adv_c);
    let surrogate = g.mean_all(g.minimum(s1, s2));

    let vs = g.input(Tensor::from_vec(vt.vs, &[b]));
    let verr = g.sub(parts.value, vs);
    let vf_loss = g.mean_all(g.square(verr));

    let mut loss = g.scale(surrogate, -1.0);
    loss = g.add(loss, g.scale(vf_loss, cfg.vf_coeff));
    loss = g.add(loss, g.scale(parts.entropy, -cfg.entropy_coeff));
    loss = g.add(loss, g.scale(parts.kl, cfg.kl_coeff));

    let mut grads = g.backward(loss, &parts.param_vars);
    let grad_norm = clip_grad_norm(&mut grads, cfg.grad_clip);

    let ratio_vals = g.value(ratio);
    let stats = LossStats {
        surrogate: g.value(surrogate).data()[0],
        vf_loss: g.value(vf_loss).data()[0],
        entropy: g.value(parts.entropy).data()[0],
        kl: g.value(parts.kl).data()[0],
        clip_frac: ratio_vals
            .data()
            .iter()
            .filter(|&&r| (r - 1.0).abs() > cfg.clip)
            .count() as f32
            / b as f32,
        mean_ratio: ratio_vals.mean(),
        min_ratio: ratio_vals
            .data()
            .iter()
            .fold(f32::INFINITY, |m, &r| m.min(r.abs())),
        grad_norm,
    };
    (grads, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gae::fill_gae;
    use crate::policy::PolicySpec;
    use crate::rollout::RolloutWorker;
    use stellaris_envs::{make_env, EnvConfig, EnvId};
    use stellaris_nn::ParamSet;

    fn setup(id: EnvId) -> (PolicyNet, SampleBatch) {
        let mut env = make_env(id, EnvConfig::tiny());
        env.reset(0);
        let mut spec = PolicySpec::for_env(env.as_ref());
        spec.hidden = 16;
        let policy = PolicyNet::new(spec, 0);
        let mut w = RolloutWorker::new(env, 11);
        let mut batch = w.collect(&policy, 32);
        fill_gae(&mut batch, 0.99, 0.95);
        (policy, batch)
    }

    #[test]
    fn paper_config_matches_table3() {
        let c = ImpactConfig::paper();
        assert_eq!(c.lr, 0.0005);
        assert_eq!(c.clip, 0.4);
        assert_eq!(c.kl_coeff, 1.0);
        assert_eq!(c.entropy_coeff, 0.01);
        assert_eq!(c.target_update_freq, 1);
    }

    #[test]
    fn gradients_finite_both_action_kinds() {
        for id in [EnvId::PointMass, EnvId::ChainMdp] {
            let (policy, batch) = setup(id);
            let learner = ImpactLearner::new(&policy);
            let target = learner.target_net(&policy);
            let (grads, stats) =
                impact_gradients(&policy, &target, &batch, &ImpactConfig::scaled(), None);
            assert_eq!(grads.len(), policy.params().len());
            assert!(grads.iter().all(|g| g.is_finite()));
            assert!(stats.vf_loss.is_finite());
        }
    }

    #[test]
    fn fresh_target_gives_unit_ratio() {
        let (policy, batch) = setup(EnvId::PointMass);
        let learner = ImpactLearner::new(&policy);
        let target = learner.target_net(&policy);
        let (_, stats) = impact_gradients(&policy, &target, &batch, &ImpactConfig::scaled(), None);
        assert!(
            (stats.mean_ratio - 1.0).abs() < 1e-2,
            "{}",
            stats.mean_ratio
        );
    }

    #[test]
    fn stale_target_shifts_ratio() {
        let (policy, batch) = setup(EnvId::PointMass);
        // Target from a different seed: ratios deviate from 1.
        let other = PolicyNet::new(policy.spec.clone(), 99);
        let (_, stats) = impact_gradients(&policy, &other, &batch, &ImpactConfig::scaled(), None);
        assert!(
            (stats.mean_ratio - 1.0).abs() > 1e-3,
            "{}",
            stats.mean_ratio
        );
    }

    #[test]
    fn target_refresh_honours_frequency() {
        let (policy, _) = setup(EnvId::PointMass);
        let cfg = ImpactConfig {
            target_update_freq: 3,
            ..ImpactConfig::scaled()
        };
        let mut learner = ImpactLearner::new(&policy);
        let mut moved = PolicyNet::new(policy.spec.clone(), 5);
        moved.version = 10;
        learner.maybe_refresh(&moved, &cfg); // 1
        assert_ne!(learner.target_flat, moved.flatten());
        learner.maybe_refresh(&moved, &cfg); // 2
        learner.maybe_refresh(&moved, &cfg); // 3 -> refresh
        assert_eq!(learner.target_flat, moved.flatten());
    }

    #[test]
    fn ratio_cap_changes_surrogate() {
        let (policy, batch) = setup(EnvId::PointMass);
        let other = PolicyNet::new(policy.spec.clone(), 99);
        let (_, capped) =
            impact_gradients(&policy, &other, &batch, &ImpactConfig::scaled(), Some(0.3));
        let (_, free) = impact_gradients(&policy, &other, &batch, &ImpactConfig::scaled(), None);
        assert!(
            (capped.mean_ratio - free.mean_ratio).abs() < 1e-6,
            "raw stats"
        );
        assert!(capped.surrogate != free.surrogate, "cap must bite");
    }
}
