//! # stellaris-rl
//!
//! The DRL algorithm layer of the Stellaris reproduction: trajectory
//! containers with cache codecs, GAE and V-trace estimators, the Table II
//! policy/critic networks, actor-side rollout collection, and the two
//! algorithms the paper integrates with — on-policy PPO and off-policy
//! IMPACT — both accepting the Stellaris global importance-sampling
//! truncation as a ratio cap.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod delta;
pub mod gae;
pub mod impact;
pub mod impala;
pub mod policy;
pub mod ppo;
pub mod rollout;
pub mod trajectory;
pub mod vtrace;

pub use checkpoint::{load_policy, save_policy};
pub use delta::{apply_to_snapshot, BlockLayout, BlockUpdate, DeltaError, DeltaStore, PolicyDelta};
pub use gae::fill_gae;
pub use impact::{impact_gradients, ImpactConfig, ImpactLearner};
pub use impala::{impala_gradients, ImpalaConfig};
pub use policy::{ActOutput, Backbone, DistParams, PolicyNet, PolicySnapshot, PolicySpec};
pub use ppo::{adapt_kl_coeff, ppo_gradients, LossStats, PpoConfig};
pub use rollout::{evaluate, RolloutWorker};
pub use trajectory::SampleBatch;
pub use vtrace::{vtrace, VtraceInput, VtraceOutput};
