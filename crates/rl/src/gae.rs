//! Generalized Advantage Estimation (Schulman et al., used by the paper's
//! "standard distributed PPO with GAE", §VIII-B).

use crate::trajectory::SampleBatch;

/// Computes GAE(γ, λ) advantages and discounted return targets for a batch
/// in place. `batch.values` must hold `V(s_t)` and `batch.bootstrap_value`
/// the value of the state following the final transition.
pub fn fill_gae(batch: &mut SampleBatch, gamma: f32, lambda: f32) {
    let t = batch.len();
    let mut adv = vec![0.0f32; t];
    let mut last_gae = 0.0f32;
    for i in (0..t).rev() {
        let not_done = if batch.dones[i] { 0.0 } else { 1.0 };
        let next_value = if i + 1 < t {
            batch.values[i + 1]
        } else {
            batch.bootstrap_value
        };
        let delta = batch.rewards[i] + gamma * next_value * not_done - batch.values[i];
        last_gae = delta + gamma * lambda * not_done * last_gae;
        adv[i] = last_gae;
    }
    batch.returns = adv
        .iter()
        .zip(batch.values.iter())
        .map(|(a, v)| a + v)
        .collect();
    batch.advantages = adv;
}

/// Plain discounted episodic return of a reward sequence (diagnostics).
pub fn discounted_return(rewards: &[f32], gamma: f32) -> f32 {
    rewards.iter().rev().fold(0.0f32, |acc, &r| r + gamma * acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_nn::Tensor;

    fn batch(rewards: Vec<f32>, values: Vec<f32>, dones: Vec<bool>, bootstrap: f32) -> SampleBatch {
        let t = rewards.len();
        SampleBatch {
            env: "t".into(),
            obs: Tensor::zeros(&[t, 1]),
            actions_disc: vec![0; t],
            actions_cont: None,
            behaviour_logp: vec![0.0; t],
            values,
            bootstrap_value: bootstrap,
            advantages: vec![],
            returns: vec![],
            behaviour_mu: None,
            behaviour_log_std: None,
            behaviour_logits: Some(Tensor::zeros(&[t, 2])),
            policy_version: 0,
            episode_returns: vec![],
            rewards,
            dones,
        }
    }

    #[test]
    fn gae_with_lambda_one_is_discounted_residual_return() {
        // λ=1 reduces GAE to (discounted return) - V(s).
        let gamma = 0.9;
        let mut b = batch(
            vec![1.0, 1.0, 1.0],
            vec![0.5, 0.5, 0.5],
            vec![false, false, true],
            99.0, // ignored: last step is done
        );
        fill_gae(&mut b, gamma, 1.0);
        let ret2 = 1.0;
        let ret1 = 1.0 + gamma * ret2;
        let ret0 = 1.0 + gamma * ret1;
        assert!((b.advantages[0] - (ret0 - 0.5)).abs() < 1e-5);
        assert!((b.advantages[1] - (ret1 - 0.5)).abs() < 1e-5);
        assert!((b.advantages[2] - (ret2 - 0.5)).abs() < 1e-5);
        // Returns = advantages + values.
        assert!((b.returns[0] - ret0).abs() < 1e-5);
    }

    #[test]
    fn gae_with_lambda_zero_is_one_step_td() {
        let gamma = 0.99;
        let mut b = batch(vec![2.0, 3.0], vec![1.0, 4.0], vec![false, false], 5.0);
        fill_gae(&mut b, gamma, 0.0);
        assert!((b.advantages[0] - (2.0 + gamma * 4.0 - 1.0)).abs() < 1e-5);
        assert!((b.advantages[1] - (3.0 + gamma * 5.0 - 4.0)).abs() < 1e-5);
    }

    #[test]
    fn done_resets_accumulation() {
        let gamma = 0.9;
        let mut b = batch(vec![1.0, 10.0], vec![0.0, 0.0], vec![true, false], 0.0);
        fill_gae(&mut b, gamma, 0.95);
        // First step terminal: advantage is just its reward.
        assert!((b.advantages[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bootstrap_used_for_unfinished_episode() {
        let gamma = 0.5;
        let mut b = batch(vec![0.0], vec![0.0], vec![false], 8.0);
        fill_gae(&mut b, gamma, 1.0);
        assert!((b.advantages[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn discounted_return_matches_manual() {
        let r = discounted_return(&[1.0, 2.0, 3.0], 0.5);
        assert!((r - (1.0 + 0.5 * (2.0 + 0.5 * 3.0))).abs() < 1e-6);
    }
}
