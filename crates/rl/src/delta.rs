//! Delta-encoded policy pulls (DESIGN.md §16): a learner at policy version
//! `v` downloads only the parameter blocks that changed since `v` instead of
//! the whole flat snapshot.
//!
//! The parameter plane is partitioned into *blocks* — one block per parameter
//! tensor ([`BlockLayout`], the same ordering `ParamSet::params` uses) — and
//! every block carries the version of the commit that last wrote it. A pull
//! at version `v` then ships exactly the blocks with `block_version > v`
//! ([`DeltaStore::delta_since`]); a learner that is already current receives
//! an empty delta a few bytes long. When `v` predates what the store can
//! answer for (older than the store's birth version, or from an unknown
//! lineage ahead of the store), the delta degrades to a **full refresh** that
//! carries every block, so `apply` always converges to the store's state.
//!
//! ABS (arXiv 2301.08895) shows convergence survives communicating less per
//! sync under bounded staleness; Adaptive Policy Synchronization
//! (arXiv 2507.10990) decouples re-sync from the round clock. This module is
//! the wire-format half of both: [`PolicyDelta`] is a [`Codec`] value, so it
//! rides the existing frame transport (`op::POLICY_DELTA`).

use bytes::BytesMut;
use stellaris_cache::{decode_seq, encode_seq, seq_encoded_len, Codec, CodecError};

use crate::policy::PolicySnapshot;

/// How a flat parameter vector splits into blocks: one block per parameter
/// tensor, in `ParamSet::params` order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockLayout {
    /// Element count of each block.
    sizes: Vec<usize>,
    /// Element offset of each block within the flat vector.
    offsets: Vec<usize>,
    /// Total element count (sum of `sizes`).
    total: usize,
}

impl BlockLayout {
    /// Builds the layout from parameter-tensor shapes
    /// (`ParamSet::param_shapes`).
    pub fn from_shapes(shapes: &[Vec<usize>]) -> Self {
        let sizes: Vec<usize> = shapes.iter().map(|s| s.iter().product::<usize>()).collect();
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut total = 0usize;
        for &sz in &sizes {
            offsets.push(total);
            total += sz;
        }
        Self {
            sizes,
            offsets,
            total,
        }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.sizes.len()
    }

    /// Element count of block `i`.
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Element offset of block `i` within the flat vector.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total element count across all blocks.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Splits a flat vector into per-block vectors.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.total()` — layouts come from the same
    /// policy spec as the flat vector, so a mismatch is a caller bug.
    pub fn split(&self, flat: &[f32]) -> Vec<Vec<f32>> {
        // lint:allow(L1): shape mismatch between a policy and its own layout is a caller bug
        assert_eq!(flat.len(), self.total, "flat length disagrees with layout");
        self.sizes
            .iter()
            .zip(&self.offsets)
            .map(|(&sz, &off)| flat[off..off + sz].to_vec())
            .collect()
    }
}

/// One changed block inside a [`PolicyDelta`].
#[derive(Clone, Debug, PartialEq)]
pub struct BlockUpdate {
    /// Block index within the [`BlockLayout`].
    pub index: u32,
    /// The block's full new contents.
    pub data: Vec<f32>,
}

impl Codec for BlockUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        self.index.encode(buf);
        self.data.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Self {
            index: u32::decode(buf)?,
            data: Vec::<f32>::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.index.encoded_len() + self.data.encoded_len()
    }
}

/// A versioned policy update: everything a learner at version `from` needs
/// to reach version `to`.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyDelta {
    /// The version this delta applies on top of. Ignored when `full`.
    pub from: u64,
    /// The version the receiver is at after applying.
    pub to: u64,
    /// Full refresh: `blocks` carries *every* block and replaces the
    /// receiver's state regardless of its current version.
    pub full: bool,
    /// Changed blocks, ascending by index.
    pub blocks: Vec<BlockUpdate>,
}

impl PolicyDelta {
    /// True when there is nothing to apply (receiver already current).
    pub fn is_empty(&self) -> bool {
        !self.full && self.blocks.is_empty()
    }
}

impl Codec for PolicyDelta {
    fn encode(&self, buf: &mut BytesMut) {
        self.from.encode(buf);
        self.to.encode(buf);
        self.full.encode(buf);
        encode_seq(&self.blocks, buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Self {
            from: u64::decode(buf)?,
            to: u64::decode(buf)?,
            full: bool::decode(buf)?,
            blocks: decode_seq(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.from.encoded_len()
            + self.to.encoded_len()
            + self.full.encoded_len()
            + seq_encoded_len(&self.blocks)
    }
}

/// Applying a delta failed; the receiver's state is untouched (validation
/// happens before any write).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was built against a different base version than the
    /// receiver holds; the receiver should fall back to a full pull.
    BaseMismatch {
        /// Version the delta applies on top of.
        expected: u64,
        /// Version the receiver actually holds.
        got: u64,
    },
    /// A block index is outside the layout.
    BlockIndex(u32),
    /// A block's element count disagrees with the layout.
    BlockSize {
        /// Offending block.
        index: u32,
        /// Element count the layout requires.
        expected: usize,
        /// Element count the delta carried.
        got: usize,
    },
    /// A full refresh did not carry every block exactly once.
    IncompleteFull,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, got } => {
                write!(f, "delta base v{expected} does not match receiver v{got}")
            }
            DeltaError::BlockIndex(i) => write!(f, "block index {i} outside layout"),
            DeltaError::BlockSize {
                index,
                expected,
                got,
            } => write!(f, "block {index}: expected {expected} elements, got {got}"),
            DeltaError::IncompleteFull => {
                write!(f, "full refresh must carry every block exactly once")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Validates a delta against a layout and a receiver version without
/// touching any state: every error [`apply_to_snapshot`] can raise is raised
/// here first.
fn validate(delta: &PolicyDelta, layout: &BlockLayout, at: u64) -> Result<(), DeltaError> {
    if !delta.full && delta.from != at {
        return Err(DeltaError::BaseMismatch {
            expected: delta.from,
            got: at,
        });
    }
    let mut seen = vec![false; layout.n_blocks()];
    for b in &delta.blocks {
        let i = b.index as usize;
        if i >= layout.n_blocks() {
            return Err(DeltaError::BlockIndex(b.index));
        }
        if b.data.len() != layout.size(i) {
            return Err(DeltaError::BlockSize {
                index: b.index,
                expected: layout.size(i),
                got: b.data.len(),
            });
        }
        if seen[i] {
            // A duplicate in a full refresh means some other block is
            // missing; in a partial delta it is a sender bug either way.
            return Err(DeltaError::IncompleteFull);
        }
        seen[i] = true;
    }
    if delta.full && !seen.iter().all(|&s| s) {
        return Err(DeltaError::IncompleteFull);
    }
    Ok(())
}

/// Applies a delta to a flat snapshot in place: the receiver half of a
/// delta pull for holders of a plain [`PolicySnapshot`] (remote workers).
/// On error the snapshot is untouched.
pub fn apply_to_snapshot(
    delta: &PolicyDelta,
    snap: &mut PolicySnapshot,
    layout: &BlockLayout,
) -> Result<(), DeltaError> {
    validate(delta, layout, snap.version)?;
    for b in &delta.blocks {
        let off = layout.offset(b.index as usize);
        snap.flat[off..off + b.data.len()].copy_from_slice(&b.data);
    }
    snap.version = delta.to;
    Ok(())
}

/// Server-side versioned block store: tracks, per block, the version of the
/// snapshot that last changed it, and serves [`PolicyDelta`]s against any
/// base version it can answer for.
///
/// Content-diff based: feed it every published [`PolicySnapshot`] with
/// [`DeltaStore::ingest`] and it detects which blocks actually moved. (The
/// sharded parameter server maintains exact per-block versions natively and
/// builds its deltas without diffing; this store is for serving deltas in
/// front of any snapshot producer, e.g. the remote fleet's driver.)
#[derive(Clone, Debug)]
pub struct DeltaStore {
    layout: BlockLayout,
    blocks: Vec<Vec<f32>>,
    block_versions: Vec<u64>,
    version: u64,
    /// The version tracking began at: pulls from before it get a full
    /// refresh because the store cannot know which blocks changed earlier.
    birth: u64,
}

impl DeltaStore {
    /// Starts tracking from a snapshot.
    pub fn new(layout: BlockLayout, snap: &PolicySnapshot) -> Self {
        let blocks = layout.split(&snap.flat);
        let n = layout.n_blocks();
        Self {
            layout,
            blocks,
            block_versions: vec![snap.version; n],
            version: snap.version,
            birth: snap.version,
        }
    }

    /// The store's current version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The block layout this store serves.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// Ingests a newer snapshot, content-diffing each block; returns how
    /// many blocks changed. Snapshots older than the store's version are
    /// ignored (a racing stale publisher), returning 0.
    pub fn ingest(&mut self, snap: &PolicySnapshot) -> usize {
        if snap.version < self.version {
            return 0;
        }
        let fresh = self.layout.split(&snap.flat);
        let mut changed = 0;
        for (i, block) in fresh.into_iter().enumerate() {
            if block != self.blocks[i] {
                self.blocks[i] = block;
                self.block_versions[i] = snap.version;
                changed += 1;
            }
        }
        self.version = snap.version;
        changed
    }

    /// The delta a learner at version `v` needs to reach the store's
    /// current state. Empty when `v` is current; a full refresh when `v` is
    /// ahead of the store (unknown lineage) or older than the store's birth.
    pub fn delta_since(&self, v: u64) -> PolicyDelta {
        if v > self.version || v < self.birth {
            return PolicyDelta {
                from: v,
                to: self.version,
                full: true,
                blocks: self.all_blocks(),
            };
        }
        let blocks = (0..self.layout.n_blocks())
            .filter(|&i| self.block_versions[i] > v)
            .map(|i| BlockUpdate {
                index: i as u32,
                data: self.blocks[i].clone(),
            })
            .collect();
        PolicyDelta {
            from: v,
            to: self.version,
            full: false,
            blocks,
        }
    }

    fn all_blocks(&self) -> Vec<BlockUpdate> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| BlockUpdate {
                index: i as u32,
                data: b.clone(),
            })
            .collect()
    }

    /// Reassembles the current state as a flat snapshot.
    pub fn snapshot(&self) -> PolicySnapshot {
        let mut flat = Vec::with_capacity(self.layout.total());
        for b in &self.blocks {
            flat.extend_from_slice(b);
        }
        PolicySnapshot {
            version: self.version,
            flat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn layout3() -> BlockLayout {
        BlockLayout::from_shapes(&[vec![2, 3], vec![4], vec![1]])
    }

    fn snap(version: u64, layout: &BlockLayout, fill: f32) -> PolicySnapshot {
        PolicySnapshot {
            version,
            flat: (0..layout.total()).map(|i| fill + i as f32).collect(),
        }
    }

    #[test]
    fn layout_partitions_the_flat_vector() {
        let l = layout3();
        assert_eq!(l.n_blocks(), 3);
        assert_eq!(l.total(), 11);
        assert_eq!((l.offset(0), l.size(0)), (0, 6));
        assert_eq!((l.offset(1), l.size(1)), (6, 4));
        assert_eq!((l.offset(2), l.size(2)), (10, 1));
        let split = l.split(&(0..11).map(|i| i as f32).collect::<Vec<_>>());
        assert_eq!(split[2], vec![10.0]);
    }

    #[test]
    fn empty_delta_for_current_learner() {
        let l = layout3();
        let store = DeltaStore::new(l, &snap(5, &layout3(), 0.0));
        let d = store.delta_since(5);
        assert!(d.is_empty());
        assert_eq!((d.from, d.to), (5, 5));
        // An empty delta is a few bytes, not a policy payload.
        assert!(d.to_bytes().len() < 32);
    }

    #[test]
    fn partial_delta_ships_only_changed_blocks() {
        let l = layout3();
        let mut store = DeltaStore::new(l.clone(), &snap(0, &l, 0.0));
        // Bump only block 1's contents at version 1.
        let mut s1 = store.snapshot();
        s1.version = 1;
        s1.flat[7] += 10.0;
        assert_eq!(store.ingest(&s1), 1);
        let d = store.delta_since(0);
        assert!(!d.full);
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].index, 1);
        // A learner at 0 applies it and lands on the store's state.
        let mut learner = snap(0, &l, 0.0);
        apply_to_snapshot(&d, &mut learner, &l).unwrap();
        assert_eq!(learner, store.snapshot());
    }

    #[test]
    fn too_old_or_future_base_falls_back_to_full_refresh() {
        let l = layout3();
        let mut store = DeltaStore::new(l.clone(), &snap(10, &l, 0.0));
        let mut s11 = store.snapshot();
        s11.version = 11;
        s11.flat[0] += 1.0;
        store.ingest(&s11);

        for v in [3, 99] {
            let d = store.delta_since(v);
            assert!(d.full, "v{v} must fall back to a full refresh");
            assert_eq!(d.blocks.len(), l.n_blocks());
            // Full refresh applies regardless of the receiver's version.
            let mut learner = snap(v, &l, 42.0);
            apply_to_snapshot(&d, &mut learner, &l).unwrap();
            assert_eq!(learner, store.snapshot());
        }
    }

    #[test]
    fn base_mismatch_is_a_typed_error_and_leaves_state_untouched() {
        let l = layout3();
        let d = PolicyDelta {
            from: 7,
            to: 8,
            full: false,
            blocks: vec![BlockUpdate {
                index: 0,
                data: vec![0.0; 6],
            }],
        };
        let mut learner = snap(3, &l, 1.0);
        let before = learner.clone();
        assert_eq!(
            apply_to_snapshot(&d, &mut learner, &l),
            Err(DeltaError::BaseMismatch {
                expected: 7,
                got: 3
            })
        );
        assert_eq!(learner, before);
    }

    #[test]
    fn bad_block_index_and_size_rejected_before_any_write() {
        let l = layout3();
        let mut learner = snap(0, &l, 0.0);
        let before = learner.clone();
        let bad_index = PolicyDelta {
            from: 0,
            to: 1,
            full: false,
            blocks: vec![BlockUpdate {
                index: 9,
                data: vec![],
            }],
        };
        assert_eq!(
            apply_to_snapshot(&bad_index, &mut learner, &l),
            Err(DeltaError::BlockIndex(9))
        );
        let bad_size = PolicyDelta {
            from: 0,
            to: 1,
            full: false,
            blocks: vec![
                BlockUpdate {
                    index: 0,
                    data: vec![1.0; 6],
                },
                BlockUpdate {
                    index: 1,
                    data: vec![2.0; 3],
                },
            ],
        };
        assert_eq!(
            apply_to_snapshot(&bad_size, &mut learner, &l),
            Err(DeltaError::BlockSize {
                index: 1,
                expected: 4,
                got: 3
            })
        );
        assert_eq!(learner, before, "failed applies must not write");
    }

    #[test]
    fn incomplete_full_refresh_rejected() {
        let l = layout3();
        let mut learner = snap(0, &l, 0.0);
        let d = PolicyDelta {
            from: 0,
            to: 1,
            full: true,
            blocks: vec![BlockUpdate {
                index: 0,
                data: vec![0.0; 6],
            }],
        };
        assert_eq!(
            apply_to_snapshot(&d, &mut learner, &l),
            Err(DeltaError::IncompleteFull)
        );
    }

    proptest! {
        /// The delta identity: for an arbitrary walk of block-change sets,
        /// `apply(delta(v→w), snapshot_v) == snapshot_w` for every `v` along
        /// the walk — including `v == w` (empty delta) and pre-birth `v`
        /// (full-refresh fallback).
        #[test]
        fn prop_apply_delta_reaches_current_snapshot(
            shapes in proptest::collection::vec(1usize..5, 1..6),
            n_steps in 0usize..8,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let layout = BlockLayout::from_shapes(
                &shapes.iter().map(|&n| vec![n]).collect::<Vec<_>>(),
            );
            let birth = 3u64;
            let s0 = PolicySnapshot {
                version: birth,
                flat: (0..layout.total()).map(|i| i as f32).collect(),
            };
            let mut store = DeltaStore::new(layout.clone(), &s0);
            // Snapshots a learner could have pulled at each version,
            // including one from before the store was born.
            let mut held = vec![
                PolicySnapshot { version: 0, flat: vec![0.0; layout.total()] },
                s0.clone(),
            ];
            let mut current = s0;
            for _ in 0..n_steps {
                current.version += 1;
                // Arbitrary block-change set, possibly empty.
                for i in 0..layout.n_blocks() {
                    if rng.gen_bool(0.5) {
                        current.flat[layout.offset(i)] += rng.gen_range(-1e3f32..1e3);
                    }
                }
                store.ingest(&current);
                held.push(current.clone());
            }
            for mut learner in held {
                let d = store.delta_since(learner.version);
                prop_assert!(d.from == learner.version || d.full);
                apply_to_snapshot(&d, &mut learner, &layout).unwrap();
                prop_assert_eq!(&learner, &store.snapshot());
            }
        }

        /// Wire roundtrip for arbitrary well-formed deltas.
        #[test]
        fn prop_delta_codec_roundtrip(
            from in 0u64..100,
            to in 0u64..100,
            full in any::<bool>(),
            n_blocks in 0usize..6,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let d = PolicyDelta {
                from,
                to,
                full,
                blocks: (0..n_blocks)
                    .map(|_| BlockUpdate {
                        index: rng.gen_range(0..16u32),
                        data: (0..rng.gen_range(0..12usize))
                            .map(|_| rng.gen_range(-1e6f32..1e6))
                            .collect(),
                    })
                    .collect(),
            };
            let bytes = d.to_bytes();
            prop_assert_eq!(bytes.len(), d.encoded_len());
            prop_assert_eq!(PolicyDelta::from_bytes(&bytes).unwrap(), d);
        }

        /// Byte soup must decode to a typed error or a value — never panic —
        /// and truncating a valid encoding at any boundary must error.
        #[test]
        fn prop_delta_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..96)) {
            let _ = PolicyDelta::from_bytes(&data);
        }

        #[test]
        fn prop_truncated_delta_errors_not_panics(
            n_blocks in 1usize..4,
            size in 1usize..5,
        ) {
            let d = PolicyDelta {
                from: 1,
                to: 2,
                full: false,
                blocks: (0..n_blocks)
                    .map(|i| BlockUpdate {
                        index: i as u32,
                        data: vec![1.5; size],
                    })
                    .collect(),
            };
            let bytes = d.to_bytes();
            for cut in 0..bytes.len() {
                prop_assert!(PolicyDelta::from_bytes(&bytes[..cut]).is_err());
            }
        }
    }
}
