//! Proximal Policy Optimization with the paper's Table III hyperparameters,
//! surrogate clipping, a KL penalty, and the optional *global* importance
//! sampling truncation of Stellaris (§V-A, Eq. 2) injected as a ratio cap.

use stellaris_nn::{clip_grad_norm, Graph, Tensor};

use crate::policy::PolicyNet;
use crate::trajectory::SampleBatch;

/// PPO hyperparameters (Table III column "PPO").
#[derive(Clone, Copy, Debug)]
pub struct PpoConfig {
    /// Base learning rate `α_0`.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
    /// Surrogate clip parameter ε.
    pub clip: f32,
    /// KL penalty coefficient.
    pub kl_coeff: f32,
    /// KL target for adaptive penalty.
    pub kl_target: f32,
    /// Entropy bonus coefficient.
    pub entropy_coeff: f32,
    /// Value-function loss coefficient.
    pub vf_coeff: f32,
    /// Train batch size for MuJoCo tasks.
    pub batch_mujoco: usize,
    /// Train batch size for Atari tasks.
    pub batch_atari: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Optional value-function clip range (RLlib's `vf_clip_param`): the
    /// value loss is the max of the unclipped and clipped-error losses.
    pub vf_clip: Option<f32>,
}

impl PpoConfig {
    /// The exact Table III values.
    pub fn paper() -> Self {
        Self {
            lr: 0.00005,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip: 0.3,
            kl_coeff: 0.2,
            kl_target: 0.01,
            entropy_coeff: 0.0,
            vf_coeff: 1.0,
            batch_mujoco: 4096,
            batch_atari: 256,
            grad_clip: 0.5,
            vf_clip: None,
        }
    }

    /// Laptop-scale variant: same shape, higher lr and smaller batches so
    /// the scaled-down experiments move within their budgets.
    pub fn scaled() -> Self {
        Self {
            lr: 1e-3,
            batch_mujoco: 512,
            batch_atari: 128,
            ..Self::paper()
        }
    }
}

/// Diagnostics from one gradient computation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossStats {
    /// Mean clipped surrogate objective (higher is better).
    pub surrogate: f32,
    /// Value-function MSE.
    pub vf_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Mean KL(behaviour ‖ new).
    pub kl: f32,
    /// Fraction of samples whose ratio left the clip interval.
    pub clip_frac: f32,
    /// Mean raw importance-sampling ratio — the per-learner statistic each
    /// learner publishes for the cross-learner global truncation (Eq. 2's
    /// `min_i` is taken over these across the learner group).
    pub mean_ratio: f32,
    /// Minimum |raw ratio| over the batch (diagnostics).
    pub min_ratio: f32,
    /// Pre-clip global gradient norm.
    pub grad_norm: f32,
}

/// Computes PPO gradients for one mini-batch.
///
/// `ratio_cap` is the Stellaris global truncation `min(|min_i(π_i/μ)|, ρ)`:
/// when `Some(c)`, every per-sample ratio is additionally capped at `c`
/// before entering the surrogate, pulling cross-learner outliers back
/// (vanilla PPO passes `None`).
pub fn ppo_gradients(
    policy: &PolicyNet,
    batch: &SampleBatch,
    cfg: &PpoConfig,
    ratio_cap: Option<f32>,
) -> (Vec<Tensor>, LossStats) {
    assert!(
        !batch.is_empty(),
        "cannot compute gradients on an empty batch"
    );
    assert_eq!(
        batch.advantages.len(),
        batch.len(),
        "advantages missing: run fill_gae before ppo_gradients"
    );
    let _span = stellaris_telemetry::span_with(
        "rl.ppo_gradients",
        vec![
            ("batch", batch.len().into()),
            ("policy_version", policy.version.into()),
        ],
    );
    let g = Graph::new();
    let parts = policy.loss_parts(&g, batch);
    let b = batch.len();

    let logp_old = g.input(Tensor::from_vec(batch.behaviour_logp.clone(), &[b]));
    let diff = g.sub(parts.logp_new, logp_old);
    // Guard against overflow on wildly off-policy samples.
    let diff = g.clamp(diff, -20.0, 20.0);
    let ratio = g.exp(diff);
    let ratio_used = match ratio_cap {
        Some(cap) => g.min_scalar(ratio, cap),
        None => ratio,
    };

    let adv = g.input(Tensor::from_vec(batch.advantages.clone(), &[b]));
    let s1 = g.mul(ratio_used, adv);
    let clipped = g.clamp(ratio_used, 1.0 - cfg.clip, 1.0 + cfg.clip);
    let s2 = g.mul(clipped, adv);
    let surrogate = g.mean_all(g.minimum(s1, s2));

    let returns = g.input(Tensor::from_vec(batch.returns.clone(), &[b]));
    let verr = g.sub(parts.value, returns);
    let vf_loss = match cfg.vf_clip {
        None => g.mean_all(g.square(verr)),
        Some(clip) => {
            // RLlib-style clipped value loss: limit how far one update can
            // move V(s) from the behaviour-time estimate.
            let v_old = g.input(Tensor::from_vec(batch.values.clone(), &[b]));
            let delta = g.clamp(g.sub(parts.value, v_old), -clip, clip);
            let v_clipped = g.add(v_old, delta);
            let clipped_err = g.sub(v_clipped, returns);
            g.mean_all(g.maximum(g.square(verr), g.square(clipped_err)))
        }
    };

    let mut loss = g.scale(surrogate, -1.0);
    loss = g.add(loss, g.scale(vf_loss, cfg.vf_coeff));
    if cfg.entropy_coeff != 0.0 {
        loss = g.add(loss, g.scale(parts.entropy, -cfg.entropy_coeff));
    }
    if cfg.kl_coeff != 0.0 {
        loss = g.add(loss, g.scale(parts.kl, cfg.kl_coeff));
    }

    let mut grads = g.backward(loss, &parts.param_vars);
    let grad_norm = clip_grad_norm(&mut grads, cfg.grad_clip);

    // Ratio statistics are taken from the RAW (uncapped) ratio: the Eq. 2
    // statistic each learner publishes must describe its own policy's
    // divergence from the actor policy, not the already-truncated value —
    // otherwise the global cap feeds back on itself and ratchets to zero.
    let ratio_vals = g.value(ratio);
    let clip_frac = ratio_vals
        .data()
        .iter()
        .filter(|&&r| (r - 1.0).abs() > cfg.clip)
        .count() as f32 // lint:allow(L4): clip counts are bounded by minibatch size, exact in f32
        / b as f32;
    let min_ratio = ratio_vals
        .data()
        .iter()
        .fold(f32::INFINITY, |m, &r| m.min(r.abs()));
    let stats = LossStats {
        surrogate: g.value(surrogate).data()[0],
        vf_loss: g.value(vf_loss).data()[0],
        entropy: g.value(parts.entropy).data()[0],
        kl: g.value(parts.kl).data()[0],
        clip_frac,
        mean_ratio: ratio_vals.mean(),
        min_ratio,
        grad_norm,
    };
    (grads, stats)
}

/// RLlib-style adaptive KL coefficient update.
pub fn adapt_kl_coeff(kl_coeff: f32, observed_kl: f32, kl_target: f32) -> f32 {
    if observed_kl > 2.0 * kl_target {
        kl_coeff * 1.5
    } else if observed_kl < 0.5 * kl_target {
        (kl_coeff * 0.5).max(1e-4)
    } else {
        kl_coeff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gae::fill_gae;
    use crate::policy::PolicySpec;
    use crate::rollout::RolloutWorker;
    use stellaris_envs::{make_env, EnvConfig, EnvId};
    use stellaris_nn::{Adam, Optimizer, ParamSet};

    fn setup(id: EnvId, steps: usize) -> (PolicyNet, SampleBatch) {
        let mut env = make_env(id, EnvConfig::tiny());
        env.reset(0);
        let mut spec = PolicySpec::for_env(env.as_ref());
        spec.hidden = 16;
        let policy = PolicyNet::new(spec, 0);
        let mut w = RolloutWorker::new(env, 7);
        let mut batch = w.collect(&policy, steps);
        fill_gae(&mut batch, 0.99, 0.95);
        batch.normalize_advantages();
        (policy, batch)
    }

    #[test]
    fn paper_config_matches_table3() {
        let c = PpoConfig::paper();
        assert_eq!(c.lr, 0.00005);
        assert_eq!(c.gamma, 0.99);
        assert_eq!(c.clip, 0.3);
        assert_eq!(c.kl_coeff, 0.2);
        assert_eq!(c.kl_target, 0.01);
        assert_eq!(c.entropy_coeff, 0.0);
        assert_eq!(c.vf_coeff, 1.0);
        assert_eq!(c.batch_mujoco, 4096);
        assert_eq!(c.batch_atari, 256);
    }

    #[test]
    fn gradients_are_finite_and_shaped() {
        let (policy, batch) = setup(EnvId::PointMass, 32);
        let (grads, stats) = ppo_gradients(&policy, &batch, &PpoConfig::scaled(), None);
        assert_eq!(grads.len(), policy.params().len());
        for (grad, p) in grads.iter().zip(policy.params()) {
            assert_eq!(grad.shape(), p.shape());
            assert!(grad.is_finite());
        }
        assert!(stats.kl >= -1e-4, "KL must be ~non-negative: {}", stats.kl);
        assert!(
            stats.mean_ratio > 0.9 && stats.mean_ratio < 1.1,
            "{}",
            stats.mean_ratio
        );
        assert!(stats.grad_norm > 0.0);
    }

    #[test]
    fn gradient_step_increases_surrogate() {
        let (mut policy, batch) = setup(EnvId::ChainMdp, 64);
        let cfg = PpoConfig::scaled();
        let (_, before) = ppo_gradients(&policy, &batch, &cfg, None);
        let mut opt = Adam::new(0.01);
        for _ in 0..5 {
            let (grads, _) = ppo_gradients(&policy, &batch, &cfg, None);
            let mut params: Vec<_> = policy.params().into_iter().cloned().collect();
            opt.step(&mut params, &grads);
            let flat = stellaris_nn::flatten_all(&params);
            policy.load_flat(&flat);
        }
        let (_, after) = ppo_gradients(&policy, &batch, &cfg, None);
        assert!(
            after.surrogate > before.surrogate,
            "{} -> {}",
            before.surrogate,
            after.surrogate
        );
    }

    #[test]
    fn ratio_cap_changes_gradients_not_stats() {
        let (policy, batch) = setup(EnvId::PointMass, 32);
        let cfg = PpoConfig::scaled();
        let (g_capped, s_capped) = ppo_gradients(&policy, &batch, &cfg, Some(0.5));
        let (g_free, s_free) = ppo_gradients(&policy, &batch, &cfg, None);
        // Reported ratio stats are RAW (pre-cap): identical either way, so
        // the Eq. 2 board never feeds back on itself.
        assert!((s_capped.mean_ratio - s_free.mean_ratio).abs() < 1e-6);
        // But the surrogate (and hence gradients) must differ under the cap.
        let delta: f32 = g_capped
            .iter()
            .zip(g_free.iter())
            .map(|(a, b)| {
                a.data()
                    .iter()
                    .zip(b.data().iter())
                    .map(|(x, y)| (x - y).abs())
                    .sum::<f32>()
            })
            .sum();
        assert!(
            delta > 0.0,
            "a 0.5 cap must bite on on-policy ratios near 1"
        );
        assert!(s_capped.surrogate != s_free.surrogate);
    }

    #[test]
    fn on_policy_ratio_is_one() {
        let (policy, batch) = setup(EnvId::PointMass, 32);
        let (_, stats) = ppo_gradients(&policy, &batch, &PpoConfig::scaled(), None);
        assert!(
            (stats.mean_ratio - 1.0).abs() < 1e-2,
            "{}",
            stats.mean_ratio
        );
        assert!(stats.clip_frac < 0.05);
    }

    #[test]
    fn discrete_task_gradients() {
        let (policy, batch) = setup(EnvId::ChainMdp, 32);
        let (grads, stats) = ppo_gradients(&policy, &batch, &PpoConfig::scaled(), None);
        assert!(grads.iter().any(|g| g.max_abs() > 0.0));
        assert!(stats.entropy > 0.0);
    }

    #[test]
    fn vf_clip_bounds_value_loss_gradient() {
        let (policy, batch) = setup(EnvId::PointMass, 32);
        let mut cfg = PpoConfig::scaled();
        let (_, unclipped) = ppo_gradients(&policy, &batch, &cfg, None);
        cfg.vf_clip = Some(10.0);
        let (_, loose) = ppo_gradients(&policy, &batch, &cfg, None);
        // A huge clip range behaves like no clipping (max of equal losses).
        assert!((loose.vf_loss - unclipped.vf_loss).abs() < 1e-4);
        cfg.vf_clip = Some(1e-6);
        let (grads, tight) = ppo_gradients(&policy, &batch, &cfg, None);
        // The clipped branch dominates: loss stays >= the unclipped one.
        assert!(tight.vf_loss >= unclipped.vf_loss - 1e-4);
        assert!(grads.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn adaptive_kl_moves_correctly() {
        assert!(
            adapt_kl_coeff(0.2, 0.05, 0.01) > 0.2,
            "KL too high -> raise"
        );
        assert!(
            adapt_kl_coeff(0.2, 0.001, 0.01) < 0.2,
            "KL too low -> lower"
        );
        assert_eq!(adapt_kl_coeff(0.2, 0.01, 0.01), 0.2, "in band -> keep");
    }

    #[test]
    #[should_panic(expected = "advantages missing")]
    fn missing_gae_panics() {
        let mut env = make_env(EnvId::PointMass, EnvConfig::tiny());
        env.reset(0);
        let mut spec = PolicySpec::for_env(env.as_ref());
        spec.hidden = 8;
        let policy = PolicyNet::new(spec, 0);
        let mut w = RolloutWorker::new(env, 7);
        let batch = w.collect(&policy, 8); // no fill_gae
        let _ = ppo_gradients(&policy, &batch, &PpoConfig::scaled(), None);
    }
}
