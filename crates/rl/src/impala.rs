//! IMPALA (Espeholt et al., ICML'18): the original off-policy actor-learner
//! architecture with V-trace correction — the ancestor both IMPACT and the
//! paper's asynchronous-actor lineage build on (§IX: "IMPALA is the first
//! off-policy (asynchronous) actor-learner architecture with V-trace
//! correction").
//!
//! The objective is the plain V-trace policy gradient: no surrogate
//! clipping and no target network — `ρ_t ∇log π(a_t|s_t) · advantage` plus
//! a value-error term and an entropy bonus. Included as a third algorithm
//! so the framework comparison covers the whole lineage.

use stellaris_nn::{clip_grad_norm, Graph, Tensor};

use crate::policy::PolicyNet;
use crate::ppo::LossStats;
use crate::trajectory::SampleBatch;
use crate::vtrace::{vtrace, VtraceInput};

/// IMPALA hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct ImpalaConfig {
    /// Learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// V-trace ρ̄ truncation.
    pub rho_bar: f32,
    /// V-trace c̄ truncation.
    pub c_bar: f32,
    /// Entropy bonus coefficient.
    pub entropy_coeff: f32,
    /// Value-loss coefficient.
    pub vf_coeff: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl ImpalaConfig {
    /// The IMPALA paper's canonical setting adapted to this scale.
    pub fn scaled() -> Self {
        Self {
            lr: 1e-3,
            gamma: 0.99,
            rho_bar: 1.0,
            c_bar: 1.0,
            entropy_coeff: 0.01,
            vf_coeff: 0.5,
            grad_clip: 0.5,
        }
    }
}

/// Computes IMPALA gradients for one mini-batch.
///
/// `ratio_cap` injects Stellaris' global truncation exactly as for PPO and
/// IMPACT: the importance weight entering the policy-gradient term is
/// additionally capped.
pub fn impala_gradients(
    policy: &PolicyNet,
    batch: &SampleBatch,
    cfg: &ImpalaConfig,
    ratio_cap: Option<f32>,
) -> (Vec<Tensor>, LossStats) {
    assert!(
        !batch.is_empty(),
        "cannot compute gradients on an empty batch"
    );
    let b = batch.len();
    // V-trace against the *current* policy (IMPALA has no target network).
    let current_logp = policy.logp_plain(batch);
    let vt = vtrace(&VtraceInput {
        behaviour_logp: &batch.behaviour_logp,
        target_logp: &current_logp,
        rewards: &batch.rewards,
        values: &batch.values,
        dones: &batch.dones,
        bootstrap_value: batch.bootstrap_value,
        gamma: cfg.gamma,
        rho_bar: cfg.rho_bar,
        c_bar: cfg.c_bar,
    });

    let g = Graph::new();
    let parts = policy.loss_parts(&g, batch);

    // Importance weight ρ_t = π/μ, truncated at ρ̄ (and at the Eq. 2 cap).
    let mu = g.input(Tensor::from_vec(batch.behaviour_logp.clone(), &[b]));
    let diff = g.clamp(g.sub(parts.logp_new, mu), -20.0, 20.0);
    let ratio = g.exp(diff);
    let mut cap = cfg.rho_bar;
    if let Some(c) = ratio_cap {
        cap = cap.min(c);
    }
    // The weight is treated as a constant multiplier in the IMPALA PG
    // (gradient flows through log π, not through ρ): detach it.
    let rho = g.detach(g.min_scalar(ratio, cap));

    let adv = g.input(Tensor::from_vec(vt.advantages.clone(), &[b]));
    let weighted = g.mul(rho, adv);
    let pg = g.mean_all(g.mul(parts.logp_new, g.detach(weighted)));

    let vs = g.input(Tensor::from_vec(vt.vs, &[b]));
    let verr = g.sub(parts.value, vs);
    let vf_loss = g.mean_all(g.square(verr));

    let mut loss = g.scale(pg, -1.0);
    loss = g.add(loss, g.scale(vf_loss, cfg.vf_coeff));
    loss = g.add(loss, g.scale(parts.entropy, -cfg.entropy_coeff));

    let mut grads = g.backward(loss, &parts.param_vars);
    let grad_norm = clip_grad_norm(&mut grads, cfg.grad_clip);

    let ratio_vals = g.value(ratio);
    let stats = LossStats {
        surrogate: g.value(pg).data()[0],
        vf_loss: g.value(vf_loss).data()[0],
        entropy: g.value(parts.entropy).data()[0],
        kl: g.value(parts.kl).data()[0],
        clip_frac: ratio_vals.data().iter().filter(|&&r| r > cap).count() as f32 / b as f32,
        mean_ratio: ratio_vals.mean(),
        min_ratio: ratio_vals
            .data()
            .iter()
            .fold(f32::INFINITY, |m, &r| m.min(r.abs())),
        grad_norm,
    };
    (grads, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gae::fill_gae;
    use crate::policy::PolicySpec;
    use crate::rollout::RolloutWorker;
    use stellaris_envs::{make_env, EnvConfig, EnvId};
    use stellaris_nn::{Adam, Optimizer, ParamSet};

    fn setup(id: EnvId) -> (PolicyNet, SampleBatch) {
        let mut env = make_env(id, EnvConfig::tiny());
        env.reset(0);
        let mut spec = PolicySpec::for_env(env.as_ref());
        spec.hidden = 16;
        let policy = PolicyNet::new(spec, 0);
        let mut w = RolloutWorker::new(env, 13);
        let mut batch = w.collect(&policy, 48);
        fill_gae(&mut batch, 0.99, 0.95);
        (policy, batch)
    }

    #[test]
    fn gradients_finite_both_kinds() {
        for id in [EnvId::PointMass, EnvId::ChainMdp] {
            let (policy, batch) = setup(id);
            let (grads, stats) = impala_gradients(&policy, &batch, &ImpalaConfig::scaled(), None);
            assert_eq!(grads.len(), policy.params().len());
            assert!(grads.iter().all(|g| g.is_finite()));
            assert!(stats.entropy > 0.0 || id == EnvId::PointMass);
        }
    }

    #[test]
    fn on_policy_ratio_near_one() {
        let (policy, batch) = setup(EnvId::ChainMdp);
        let (_, stats) = impala_gradients(&policy, &batch, &ImpalaConfig::scaled(), None);
        assert!(
            (stats.mean_ratio - 1.0).abs() < 0.05,
            "{}",
            stats.mean_ratio
        );
    }

    #[test]
    fn repeated_updates_improve_objective() {
        let (mut policy, batch) = setup(EnvId::ChainMdp);
        let cfg = ImpalaConfig::scaled();
        let (_, before) = impala_gradients(&policy, &batch, &cfg, None);
        let mut opt = Adam::new(0.01);
        for _ in 0..8 {
            let (grads, _) = impala_gradients(&policy, &batch, &cfg, None);
            let mut params: Vec<Tensor> = policy.params().into_iter().cloned().collect();
            opt.step(&mut params, &grads);
            policy.load_flat(&stellaris_nn::flatten_all(&params));
        }
        let (_, after) = impala_gradients(&policy, &batch, &cfg, None);
        assert!(
            after.surrogate > before.surrogate,
            "{} -> {}",
            before.surrogate,
            after.surrogate
        );
    }

    #[test]
    fn ratio_cap_tightens_clip() {
        let (policy, batch) = setup(EnvId::PointMass);
        let (_, free) = impala_gradients(&policy, &batch, &ImpalaConfig::scaled(), None);
        let (_, capped) = impala_gradients(&policy, &batch, &ImpalaConfig::scaled(), Some(0.5));
        assert!(
            capped.clip_frac >= free.clip_frac,
            "a tighter cap clips more"
        );
    }
}
