//! Property-based tests for the estimator algebra: GAE, V-trace and the
//! trajectory container.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use stellaris_cache::Codec;
use stellaris_nn::Tensor;
use stellaris_rl::{fill_gae, vtrace, SampleBatch, VtraceInput};

fn batch(rewards: Vec<f32>, values: Vec<f32>, dones: Vec<bool>, bootstrap: f32) -> SampleBatch {
    let t = rewards.len();
    SampleBatch {
        env: "prop".into(),
        obs: Tensor::zeros(&[t, 2]),
        actions_disc: vec![0; t],
        actions_cont: None,
        behaviour_logp: vec![-0.1; t],
        values,
        bootstrap_value: bootstrap,
        advantages: vec![],
        returns: vec![],
        behaviour_mu: None,
        behaviour_log_std: None,
        behaviour_logits: Some(Tensor::zeros(&[t, 2])),
        policy_version: 0,
        episode_returns: vec![],
        rewards,
        dones,
    }
}

proptest! {
    /// GAE(λ=1) advantages must equal discounted-return-minus-value.
    #[test]
    fn gae_lambda_one_equals_mc_residual(
        rewards in proptest::collection::vec(-5.0f32..5.0, 1..20),
        gamma in 0.5f32..0.999,
        bootstrap in -2.0f32..2.0,
    ) {
        let t = rewards.len();
        let values: Vec<f32> = (0..t).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut dones = vec![false; t];
        dones[t - 1] = true; // clean episode end: bootstrap ignored
        let mut b = batch(rewards.clone(), values.clone(), dones, bootstrap);
        fill_gae(&mut b, gamma, 1.0);
        // Reference: backwards discounted return.
        let mut ret = 0.0f32;
        for i in (0..t).rev() {
            ret = rewards[i] + gamma * ret;
            prop_assert!((b.advantages[i] - (ret - values[i])).abs() < 1e-3);
            prop_assert!((b.returns[i] - (b.advantages[i] + values[i])).abs() < 1e-4);
        }
    }

    /// GAE(λ=0) is exactly the one-step TD error everywhere.
    #[test]
    fn gae_lambda_zero_is_td_error(
        rewards in proptest::collection::vec(-5.0f32..5.0, 2..20),
        gamma in 0.5f32..0.999,
    ) {
        let t = rewards.len();
        let values: Vec<f32> = (0..t).map(|i| i as f32 * 0.1).collect();
        let dones = vec![false; t];
        let bootstrap = 1.5;
        let mut b = batch(rewards.clone(), values.clone(), dones, bootstrap);
        fill_gae(&mut b, gamma, 0.0);
        for i in 0..t {
            let next = if i + 1 < t { values[i + 1] } else { bootstrap };
            let td = rewards[i] + gamma * next - values[i];
            prop_assert!((b.advantages[i] - td).abs() < 1e-4);
        }
    }

    /// On-policy V-trace (ρ̄=c̄=1, target==behaviour) value targets must
    /// coincide with GAE(λ=1) returns.
    #[test]
    fn on_policy_vtrace_matches_gae_returns(
        rewards in proptest::collection::vec(-3.0f32..3.0, 1..16),
        gamma in 0.8f32..0.99,
    ) {
        let t = rewards.len();
        let values = vec![0.25f32; t];
        let mut dones = vec![false; t];
        dones[t - 1] = true;
        let logp = vec![-0.7f32; t];
        let out = vtrace(&VtraceInput {
            behaviour_logp: &logp,
            target_logp: &logp,
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: 0.0,
            gamma,
            rho_bar: 1.0,
            c_bar: 1.0,
        });
        let mut b = batch(rewards.clone(), values.clone(), dones, 0.0);
        fill_gae(&mut b, gamma, 1.0);
        for i in 0..t {
            prop_assert!(
                (out.vs[i] - b.returns[i]).abs() < 1e-3,
                "vs {} vs gae return {}", out.vs[i], b.returns[i]
            );
        }
    }

    /// V-trace with ρ̄ = c̄ = 0 must leave the value function untouched.
    #[test]
    fn zero_truncation_freezes_values(
        rewards in proptest::collection::vec(-3.0f32..3.0, 1..12),
    ) {
        let t = rewards.len();
        let values: Vec<f32> = (0..t).map(|i| i as f32).collect();
        let dones = vec![false; t];
        let logp = vec![-0.3f32; t];
        let out = vtrace(&VtraceInput {
            behaviour_logp: &logp,
            target_logp: &logp,
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: 5.0,
            gamma: 0.99,
            rho_bar: 0.0,
            c_bar: 0.0,
        });
        for i in 0..t {
            prop_assert!((out.vs[i] - values[i]).abs() < 1e-6);
            prop_assert!(out.advantages[i].abs() < 1e-6);
        }
    }

    /// Sample batches must survive the cache codec byte-for-byte, and
    /// minibatching must partition rows exactly.
    #[test]
    fn batch_codec_and_minibatch_partition(
        t in 1usize..40,
        mb in 1usize..16,
        seedish in 0u32..1000,
    ) {
        let rewards: Vec<f32> = (0..t).map(|i| ((i as u32 + seedish) % 7) as f32).collect();
        let values = vec![0.5; t];
        let mut dones = vec![false; t];
        dones[t - 1] = true;
        let mut b = batch(rewards, values, dones, 0.0);
        fill_gae(&mut b, 0.99, 0.95);
        let back = SampleBatch::from_bytes(&b.to_bytes()).unwrap();
        prop_assert_eq!(&back, &b);
        let parts = b.minibatches(mb);
        prop_assert_eq!(parts.iter().map(SampleBatch::len).sum::<usize>(), t);
        prop_assert!(parts.iter().all(|p| p.len() <= mb));
        // Row order preserved across the split.
        let mut rebuilt = Vec::new();
        for p in &parts {
            rebuilt.extend_from_slice(p.rewards.as_slice());
        }
        prop_assert_eq!(rebuilt, b.rewards);
    }
}
