//! im2col-based 2-D convolution kernels.
//!
//! The paper's Atari policy (Table II) uses three strided convolutions with
//! no padding, so this module implements valid (unpadded) strided
//! convolution only. The im2col transform turns each image into a
//! `[C*kh*kw, OH*OW]` column matrix so the convolution becomes a matmul,
//! which reuses the rayon-parallel GEMM in [`crate::tensor`].

use crate::tensor::Tensor;

/// Resolved convolution geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dSpec {
    /// Infers the full geometry from input/weight shapes, panicking on any
    /// incompatibility (treated as a programming error, like shape errors in
    /// the tensor layer).
    pub fn infer(input: &[usize], weight: &[usize], stride: usize) -> Self {
        assert_eq!(input.len(), 4, "conv2d input must be [b,c,h,w]");
        assert_eq!(weight.len(), 4, "conv2d weight must be [o,c,kh,kw]");
        assert!(stride >= 1, "conv2d stride must be >= 1");
        let (batch, in_c, in_h, in_w) = (input[0], input[1], input[2], input[3]);
        let (out_c, wc, kh, kw) = (weight[0], weight[1], weight[2], weight[3]);
        assert_eq!(
            in_c, wc,
            "conv2d channel mismatch: input {in_c}, weight {wc}"
        );
        assert!(kh <= in_h && kw <= in_w, "kernel larger than input");
        let out_h = (in_h - kh) / stride + 1;
        let out_w = (in_w - kw) / stride + 1;
        Self {
            batch,
            in_c,
            in_h,
            in_w,
            out_c,
            kh,
            kw,
            stride,
            out_h,
            out_w,
        }
    }

    /// Column height: `C * kh * kw`.
    #[inline]
    pub fn ckk(&self) -> usize {
        self.in_c * self.kh * self.kw
    }

    /// Output spatial size `OH * OW`.
    #[inline]
    pub fn out_hw(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Expands each batch image into a `[ckk, oh*ow]` column matrix.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Vec<Tensor> {
    let mut cols = Vec::with_capacity(spec.batch);
    let chw = spec.in_c * spec.in_h * spec.in_w;
    for b in 0..spec.batch {
        let img = &input.data()[b * chw..(b + 1) * chw];
        let mut col = vec![0.0f32; spec.ckk() * spec.out_hw()];
        let mut row = 0usize;
        for c in 0..spec.in_c {
            for ky in 0..spec.kh {
                for kx in 0..spec.kw {
                    let dst = &mut col[row * spec.out_hw()..(row + 1) * spec.out_hw()];
                    let mut di = 0usize;
                    for oy in 0..spec.out_h {
                        let iy = oy * spec.stride + ky;
                        let base = c * spec.in_h * spec.in_w + iy * spec.in_w + kx;
                        for ox in 0..spec.out_w {
                            dst[di] = img[base + ox * spec.stride];
                            di += 1;
                        }
                    }
                    row += 1;
                }
            }
        }
        cols.push(Tensor::from_vec(col, &[spec.ckk(), spec.out_hw()]));
    }
    cols
}

/// Scatters a `[ckk, oh*ow]` column-gradient (as a flat slice, so callers
/// can reuse a scratch buffer) back onto image `b` of `dx` (accumulating,
/// since output windows overlap when `stride < k`).
pub fn col2im(dcol: &[f32], spec: &Conv2dSpec, b: usize, dx: &mut Tensor) {
    let chw = spec.in_c * spec.in_h * spec.in_w;
    let img = &mut dx.data_mut()[b * chw..(b + 1) * chw];
    let mut row = 0usize;
    for c in 0..spec.in_c {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let src = &dcol[row * spec.out_hw()..(row + 1) * spec.out_hw()];
                let mut si = 0usize;
                for oy in 0..spec.out_h {
                    let iy = oy * spec.stride + ky;
                    let base = c * spec.in_h * spec.in_w + iy * spec.in_w + kx;
                    for ox in 0..spec.out_w {
                        img[base + ox * spec.stride] += src[si];
                        si += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_infer_matches_paper_atari_geometry() {
        // Table II first layer: 16 filters of 8x8 (stride 4) over 84x84.
        let spec = Conv2dSpec::infer(&[1, 3, 84, 84], &[16, 3, 8, 8], 4);
        assert_eq!((spec.out_h, spec.out_w), (20, 20));
        // Second layer: 32 of 4x4 (stride 2).
        let spec2 = Conv2dSpec::infer(&[1, 16, 20, 20], &[32, 16, 4, 4], 2);
        assert_eq!((spec2.out_h, spec2.out_w), (9, 9));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: columns are just the flattened image.
        let img = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[1, 1, 3, 3]);
        let spec = Conv2dSpec::infer(&[1, 1, 3, 3], &[1, 1, 1, 1], 1);
        let cols = im2col(&img, &spec);
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].shape(), &[1, 9]);
        assert_eq!(cols[0].data(), img.data());
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        let img = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 1, 2, 2]);
        let spec = Conv2dSpec::infer(&[1, 1, 4, 4], &[1, 1, 2, 2], 1);
        let cols = im2col(&img, &spec);
        let w2 = w.reshape(&[1, 4]);
        let out = w2.matmul(&cols[0]);
        // Direct convolution: out[y][x] = img[y][x] - img[y+1][x+1] = -5 everywhere.
        for &v in out.data() {
            assert!((v + 5.0).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        let spec = Conv2dSpec::infer(&[1, 1, 3, 3], &[1, 1, 2, 2], 1);
        let dcol = vec![1.0f32; spec.ckk() * spec.out_hw()];
        let mut dx = Tensor::zeros(&[1, 1, 3, 3]);
        col2im(&dcol, &spec, 0, &mut dx);
        // Centre pixel is covered by all four 2x2 windows.
        assert_eq!(dx.data()[4], 4.0);
        // Corners are covered by exactly one window.
        assert_eq!(dx.data()[0], 1.0);
        assert_eq!(dx.data()[8], 1.0);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn spec_rejects_channel_mismatch() {
        Conv2dSpec::infer(&[1, 3, 8, 8], &[4, 2, 3, 3], 1);
    }
}
