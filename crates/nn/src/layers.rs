//! Network building blocks: linear layers, MLPs and the paper's CNN trunk.
//!
//! Parameter ownership stays in the layer structs as plain [`Tensor`]s; a
//! forward pass binds them into a fresh [`Graph`] as leaves via
//! [`bind_params`], mirroring how a Stellaris learner function initialises
//! its policy model from the cached weights on every invocation.

use rand::Rng;

use crate::gemm::FusedAct;
use crate::graph::{Graph, Var};
use crate::tensor::{flatten_all, unflatten_all, Tensor};

/// Activation functions used in Table II of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent (MuJoCo MLPs).
    Tanh,
    /// Rectified linear unit (Atari CNNs).
    Relu,
}

impl Activation {
    /// Applies the activation inside a graph.
    pub fn apply(self, g: &Graph, x: Var) -> Var {
        match self {
            Activation::Tanh => g.tanh(x),
            Activation::Relu => g.relu(x),
        }
    }

    /// The fused-epilogue equivalent, for [`Graph::dense`] and
    /// [`Tensor::matmul_bias_act`]. Bit-identical to applying the
    /// activation as a separate op (see DESIGN.md §11).
    pub fn fused(self) -> FusedAct {
        match self {
            Activation::Tanh => FusedAct::Tanh,
            Activation::Relu => FusedAct::Relu,
        }
    }
}

/// Anything that owns a flat list of trainable tensors.
pub trait ParamSet {
    /// Immutable references to every parameter tensor, in a stable order.
    fn params(&self) -> Vec<&Tensor>;
    /// Mutable references to every parameter tensor, in the same order.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Shapes of all parameters.
    fn param_shapes(&self) -> Vec<Vec<usize>> {
        self.params().iter().map(|t| t.shape().to_vec()).collect()
    }

    /// Total trainable scalar count.
    fn num_scalars(&self) -> usize {
        self.params().iter().map(|t| t.numel()).sum()
    }

    /// Serialises all parameters into one flat buffer.
    fn flatten(&self) -> Vec<f32> {
        let owned: Vec<Tensor> = self.params().into_iter().cloned().collect();
        flatten_all(&owned)
    }

    /// Loads all parameters from a flat buffer produced by [`ParamSet::flatten`].
    fn load_flat(&mut self, flat: &[f32]) {
        let shapes = self.param_shapes();
        let tensors = unflatten_all(flat, &shapes);
        for (dst, src) in self.params_mut().into_iter().zip(tensors) {
            *dst = src;
        }
    }
}

/// Binds a parameter list into a graph as leaf variables.
pub fn bind_params(g: &Graph, params: &[&Tensor]) -> Vec<Var> {
    params.iter().map(|t| g.input((*t).clone())).collect()
}

/// Fully-connected layer: weight `[in, out]` plus bias `[out]`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix, `[in_dim, out_dim]`.
    pub w: Tensor,
    /// Bias vector, `[out_dim]`.
    pub b: Tensor,
}

impl Linear {
    /// Xavier-uniform initialised layer; `gain` scales the init range
    /// (use a small gain like 0.01 for policy output heads).
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, gain: f32, rng: &mut R) -> Self {
        let bound = gain * (6.0 / (in_dim + out_dim) as f32).sqrt();
        Self {
            w: Tensor::rand_uniform(&[in_dim, out_dim], -bound, bound.max(1e-8), rng),
            b: Tensor::zeros(&[out_dim]),
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// `x @ w + b` where `wv`/`bv` are this layer's bound parameter vars,
    /// recorded as a single fused node.
    pub fn forward(&self, g: &Graph, x: Var, wv: Var, bv: Var) -> Var {
        g.dense(x, wv, bv, FusedAct::Identity)
    }
}

/// Multi-layer perceptron with a uniform hidden activation and a linear
/// output layer (Table II's "2 x 256, Tanh" configuration and friends).
#[derive(Clone, Debug)]
pub struct Mlp {
    /// All layers, applied in order; activation after every layer except the last.
    pub layers: Vec<Linear>,
    /// Hidden activation.
    pub activation: Activation,
}

impl Mlp {
    /// Builds an MLP from layer sizes `[in, h1, ..., out]`. The final layer's
    /// init is scaled by `out_gain`.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        activation: Activation,
        out_gain: f32,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "Mlp needs at least input and output sizes"
        );
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let gain = if i == sizes.len() - 2 { out_gain } else { 1.0 };
            layers.push(Linear::new(sizes[i], sizes[i + 1], gain, rng));
        }
        Self { layers, activation }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        // lint:allow(L1): `new` asserts sizes.len() >= 2, so layers is never empty
        self.layers.last().unwrap().out_dim()
    }

    /// Graph-free forward pass for inference (actor-side sampling needs no
    /// gradients, mirroring the paper's actor/learner split).
    pub fn forward_plain(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i + 1 < self.layers.len() {
                self.activation.fused()
            } else {
                FusedAct::Identity
            };
            h = h.matmul_bias_act(&layer.w, &layer.b, act);
        }
        h
    }

    /// Forward pass; `params` must come from [`bind_params`] over
    /// [`ParamSet::params`] (order: `w0, b0, w1, b1, ...`). Each layer is
    /// one fused dense node.
    pub fn forward(&self, g: &Graph, x: Var, params: &[Var]) -> Var {
        assert_eq!(
            params.len(),
            self.layers.len() * 2,
            "param var count mismatch"
        );
        let mut h = x;
        for i in 0..self.layers.len() {
            let act = if i + 1 < self.layers.len() {
                self.activation.fused()
            } else {
                FusedAct::Identity
            };
            h = g.dense(h, params[2 * i], params[2 * i + 1], act);
        }
        h
    }
}

impl ParamSet for Mlp {
    fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| [&l.w, &l.b]).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w, &mut l.b])
            .collect()
    }
}

/// One convolutional layer of the Atari trunk.
#[derive(Clone, Debug)]
pub struct ConvLayer {
    /// Filters, `[out_c, in_c, kh, kw]`.
    pub w: Tensor,
    /// Bias, `[out_c]`.
    pub b: Tensor,
    /// Stride for both spatial axes.
    pub stride: usize,
}

impl ConvLayer {
    /// Kaiming-style uniform init.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = (in_c * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        Self {
            w: Tensor::rand_uniform(&[out_c, in_c, k, k], -bound, bound, rng),
            b: Tensor::zeros(&[out_c]),
            stride,
        }
    }
}

/// Convolutional trunk + fully-connected feature layer, the paper's Atari
/// architecture (Table II). The paper's final `256 @ 11x11` convolution
/// collapses the feature map to `1x1`, which is algebraically a dense layer
/// over the flattened map; we implement it as exactly that.
#[derive(Clone, Debug)]
pub struct Cnn {
    /// Input image geometry `[c, h, w]` (after frame stacking).
    pub input_shape: [usize; 3],
    /// Strided conv layers (ReLU between them).
    pub convs: Vec<ConvLayer>,
    /// Dense layer from the flattened final map to the feature vector.
    pub fc: Linear,
    /// Output head from features to logits/values.
    pub head: Linear,
    /// Hidden activation (ReLU in the paper).
    pub activation: Activation,
}

impl Cnn {
    /// Builds the Table II trunk for an input of shape `[c,h,w]`, producing
    /// `out_dim` outputs. Conv geometry is `16@8x8/4` then `32@4x4/2`
    /// (clamped for small inputs), feature size 256.
    pub fn table2<R: Rng + ?Sized>(
        input_shape: [usize; 3],
        out_dim: usize,
        out_gain: f32,
        rng: &mut R,
    ) -> Self {
        let [c, h, w] = input_shape;
        let k1 = 8.min(h).min(w);
        let s1 = 4.min(k1).max(1);
        let h1 = (h - k1) / s1 + 1;
        let w1 = (w - k1) / s1 + 1;
        let k2 = 4.min(h1).min(w1);
        let s2 = 2.min(k2).max(1);
        let h2 = (h1 - k2) / s2 + 1;
        let w2 = (w1 - k2) / s2 + 1;
        let convs = vec![
            ConvLayer::new(c, 16, k1, s1, rng),
            ConvLayer::new(16, 32, k2, s2, rng),
        ];
        let flat = 32 * h2 * w2;
        Self {
            input_shape,
            convs,
            fc: Linear::new(flat, 256, 1.0, rng),
            head: Linear::new(256, out_dim, out_gain, rng),
            activation: Activation::Relu,
        }
    }

    /// Output dimension of the head.
    pub fn out_dim(&self) -> usize {
        self.head.out_dim()
    }

    /// Flattened input dimension `c*h*w` the forward pass expects per row.
    pub fn in_dim(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Graph-free forward pass for inference over a `[batch, c*h*w]` matrix.
    pub fn forward_plain(&self, x: &Tensor) -> Tensor {
        use crate::conv::{im2col, Conv2dSpec};
        let [c, h, w] = self.input_shape;
        let batch = x.shape()[0];
        let mut cur = x.reshape(&[batch, c, h, w]);
        for conv in &self.convs {
            let spec = Conv2dSpec::infer(cur.shape(), conv.w.shape(), conv.stride);
            let cols = im2col(&cur, &spec);
            let w2 = conv.w.reshape(&[spec.out_c, spec.ckk()]);
            let hw = spec.out_hw();
            let mut out = Vec::with_capacity(spec.batch * spec.out_c * hw);
            for col in &cols {
                let o = w2.matmul(col);
                for (ch, chunk) in o.data().chunks(hw).enumerate() {
                    let beta = conv.b.data()[ch];
                    out.extend(chunk.iter().map(|&v| (v + beta).max(0.0)));
                }
            }
            cur = Tensor::from_vec(out, &[spec.batch, spec.out_c, spec.out_h, spec.out_w]);
        }
        let flat: usize = cur.shape()[1..].iter().product();
        let cur = cur.reshape(&[batch, flat]);
        let feat = cur.matmul_bias_act(&self.fc.w, &self.fc.b, self.activation.fused());
        feat.matmul_bias_act(&self.head.w, &self.head.b, FusedAct::Identity)
    }

    /// Forward pass over a `[batch, c*h*w]` observation matrix.
    pub fn forward(&self, g: &Graph, x: Var, params: &[Var]) -> Var {
        let expected = self.convs.len() * 2 + 4;
        assert_eq!(params.len(), expected, "param var count mismatch");
        let [c, h, w] = self.input_shape;
        let batch = g.shape_of(x)[0];
        let mut cur = g.reshape(x, &[batch, c, h, w]);
        for (i, conv) in self.convs.iter().enumerate() {
            cur = g.conv2d(cur, params[2 * i], params[2 * i + 1], conv.stride);
            cur = self.activation.apply(g, cur);
        }
        let cur_shape = g.shape_of(cur);
        let flat: usize = cur_shape[1..].iter().product();
        let flat_v = g.reshape(cur, &[batch, flat]);
        let base = self.convs.len() * 2;
        let feat = g.dense(
            flat_v,
            params[base],
            params[base + 1],
            self.activation.fused(),
        );
        self.head
            .forward(g, feat, params[base + 2], params[base + 3])
    }
}

impl ParamSet for Cnn {
    fn params(&self) -> Vec<&Tensor> {
        let mut out: Vec<&Tensor> = self.convs.iter().flat_map(|l| [&l.w, &l.b]).collect();
        out.extend([&self.fc.w, &self.fc.b, &self.head.w, &self.head.b]);
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = self
            .convs
            .iter_mut()
            .flat_map(|l| [&mut l.w, &mut l.b])
            .collect();
        out.extend([
            &mut self.fc.w,
            &mut self.fc.b,
            &mut self.head.w,
            &mut self.head.b,
        ]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mlp_shapes_match_table2_mujoco() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Table II: two fully-connected layers of 256 hidden units.
        let mlp = Mlp::new(&[11, 256, 256, 3], Activation::Tanh, 0.01, &mut rng);
        assert_eq!(mlp.layers.len(), 3);
        assert_eq!(mlp.layers[0].w.shape(), &[11, 256]);
        assert_eq!(mlp.layers[1].w.shape(), &[256, 256]);
        assert_eq!(mlp.out_dim(), 3);
    }

    #[test]
    fn mlp_forward_shape_and_grads() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 8, 2], Activation::Tanh, 1.0, &mut rng);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&[5, 4], 1.0, &mut rng));
        let vars = bind_params(&g, &mlp.params());
        let y = mlp.forward(&g, x, &vars);
        assert_eq!(g.shape_of(y), vec![5, 2]);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss, &vars);
        assert_eq!(grads.len(), mlp.params().len());
        for (grad, p) in grads.iter().zip(mlp.params()) {
            assert_eq!(grad.shape(), p.shape());
            assert!(grad.is_finite());
        }
        // Some gradient must be non-zero.
        assert!(grads.iter().any(|t| t.max_abs() > 0.0));
    }

    #[test]
    fn cnn_table2_collapses_84x84_like_paper() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cnn = Cnn::table2([3, 84, 84], 6, 0.01, &mut rng);
        // 84 -> 20 -> 9 spatial, flattened 32*9*9 into a 256 feature layer
        // (the paper's 256@11x11... wait, stride-4 8x8 gives 20, stride-2 4x4
        // gives 9; the paper's final conv spans the remaining 9x9/11x11 map).
        assert_eq!(cnn.fc.in_dim(), 32 * 9 * 9);
        assert_eq!(cnn.fc.out_dim(), 256);
        assert_eq!(cnn.out_dim(), 6);
    }

    #[test]
    fn cnn_forward_small_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cnn = Cnn::table2([2, 20, 20], 4, 1.0, &mut rng);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&[3, 2 * 20 * 20], 1.0, &mut rng));
        let vars = bind_params(&g, &cnn.params());
        let y = cnn.forward(&g, x, &vars);
        assert_eq!(g.shape_of(y), vec![3, 4]);
        let loss = g.mean_all(g.square(y));
        let grads = g.backward(loss, &vars);
        for (grad, p) in grads.iter().zip(cnn.params()) {
            assert_eq!(grad.shape(), p.shape());
            assert!(grad.is_finite());
        }
    }

    #[test]
    fn flatten_load_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Relu, 1.0, &mut rng);
        let flat = mlp.flatten();
        let mut other = Mlp::new(&[3, 5, 2], Activation::Relu, 1.0, &mut rng);
        assert_ne!(other.flatten(), flat);
        other.load_flat(&flat);
        assert_eq!(other.flatten(), flat);
    }

    #[test]
    fn mlp_forward_plain_matches_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mlp = Mlp::new(&[5, 7, 3], Activation::Tanh, 1.0, &mut rng);
        let x = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let g = Graph::new();
        let xv = g.input(x.clone());
        let vars = bind_params(&g, &mlp.params());
        let want = g.value(mlp.forward(&g, xv, &vars));
        let got = mlp.forward_plain(&x);
        for (a, b) in got.data().iter().zip(want.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cnn_forward_plain_matches_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let cnn = Cnn::table2([2, 16, 16], 3, 1.0, &mut rng);
        let x = Tensor::randn(&[2, 2 * 16 * 16], 1.0, &mut rng);
        let g = Graph::new();
        let xv = g.input(x.clone());
        let vars = bind_params(&g, &cnn.params());
        let want = g.value(cnn.forward(&g, xv, &vars));
        let got = cnn.forward_plain(&x);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn num_scalars_counts_weights_and_biases() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mlp = Mlp::new(&[3, 4, 2], Activation::Tanh, 1.0, &mut rng);
        assert_eq!(mlp.num_scalars(), 3 * 4 + 4 + 4 * 2 + 2);
    }
}
