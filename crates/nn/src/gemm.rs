//! Cache-blocked, panel-packed GEMM with a register-tiled micro-kernel.
//!
//! This is the compute core behind [`crate::Tensor::matmul`] and the graph's
//! backward pass. The structure follows the classic Goto/BLIS decomposition:
//! the operands are cut into `MC x KC` (A) and `KC x NC` (B) cache blocks,
//! each block is repacked into contiguous k-major panels of `MR` rows (A) and
//! `NR` columns (B), and an `MR x NR` register-tiled micro-kernel sweeps the
//! packed panels. Packing makes every inner-loop access unit-stride and lets
//! the same kernel serve transposed operands for free: [`MatRef`] carries
//! row/column strides, so `X^T` is just a stride swap — no materialised
//! transpose anywhere on the hot path.
//!
//! # Exactness contract
//!
//! The packed kernel is **bit-identical** to the retained naive reference
//! ([`gemm_naive`]) for every shape, including `k > KC`:
//!
//! * the micro-kernel initialises its accumulators *from C* (zeroed on the
//!   first `KC` block unless accumulating), and an `f32` store/load
//!   round-trip is exact, so splitting `k` into blocks does not reassociate
//!   the per-element sum;
//! * products are added in ascending-`k` order with separately rounded
//!   multiply and add (no `mul_add`/FMA — Rust never fuses implicitly);
//! * edge tiles are zero-padded in the packed panels; padded lanes only
//!   produce values in padded rows/columns, which are never stored.
//!
//! The same argument makes `accumulate = true` (used by backward) exact: it
//! merely seeds the accumulators with the existing C values.
//!
//! # Parallelism
//!
//! Row-slabs of `MC` rows are distributed over rayon when the FLOP count
//! `m*n*k` crosses [`PAR_GEMM_FLOPS`]. Gating on FLOPs rather than output
//! size (`m*n`) matters for tall-skinny products such as the policy head
//! (`m*k` large, `n` tiny): their output is small but their work is not.
//! Each slab repacks B independently — for `m/MC` slabs that costs
//! `m/MC * k * n` extra copies, noise next to the `m*n*k` multiplies.

use std::cell::RefCell;

use rayon::prelude::*;

/// Micro-kernel tile height (rows of A per register tile).
pub const MR: usize = 4;
/// Micro-kernel tile width (columns of B per register tile). `MR * NR` is
/// 64 f32 accumulators — small enough that LLVM keeps the whole tile in
/// vector registers (wider tiles such as 6x16 or 4x32 spill to the stack
/// and run an order of magnitude slower).
pub const NR: usize = 16;
/// Rows of A per cache block (L2-resident packed A panel).
const MC: usize = 128;
/// Inner (`k`) extent per cache block. `KC * NR * 4` bytes is one packed B
/// panel; at 256 that is 16 KB, leaving half of a 32 KB L1d for the A panel
/// and the C tile.
const KC: usize = 256;
/// Columns of B per cache block (L3-resident packed B panel).
const NC: usize = 4096;

/// Parallelise when `m*n*k` (one multiply-add each) reaches this many FLOPs.
/// The old heuristic gated on output size `m*n`, which kept tall-skinny
/// products (policy-head shapes like `[4096,256]x[256,4]`) serial forever.
pub const PAR_GEMM_FLOPS: usize = 1 << 20;

/// Whether a `[m,k] x [k,n]` product is worth distributing over rayon.
/// Saturating so absurd shapes cannot overflow the predicate.
#[inline]
pub fn par_worthwhile(m: usize, n: usize, k: usize) -> bool {
    m.saturating_mul(n).saturating_mul(k) >= PAR_GEMM_FLOPS
}

/// Activation fused into the GEMM epilogue by
/// [`crate::Tensor::matmul_bias_act`] and `Graph::dense`.
///
/// The epilogue computes `c = act(c + bias)` as a separate pass after the
/// full `k` reduction, so a fused call rounds identically to the unfused
/// `matmul` → `add_row_broadcast` → `map` chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusedAct {
    /// No activation; epilogue only adds the bias.
    Identity,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit (`max(x, 0)`).
    Relu,
}

impl FusedAct {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn activate(self, x: f32) -> f32 {
        match self {
            FusedAct::Identity => x,
            FusedAct::Tanh => x.tanh(),
            FusedAct::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *output* `y = act(x)`, which is
    /// what the fused dense backward has in hand (`tanh' = 1 - y²`,
    /// `relu' = [y > 0]` — equivalent to `[x > 0]` since `y = max(x, 0)`).
    #[inline]
    pub fn deriv_from_output(self, y: f32) -> f32 {
        match self {
            FusedAct::Identity => 1.0,
            FusedAct::Tanh => 1.0 - y * y,
            FusedAct::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Borrowed view of a 2-D `f32` matrix with explicit strides.
///
/// `new` wraps a row-major buffer; [`MatRef::t`] yields the transposed view
/// by swapping extents and strides, so transposed operands feed the packed
/// kernel without copying.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    rs: usize,
    cs: usize,
}

impl<'a> MatRef<'a> {
    /// Row-major `rows x cols` view over `data`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "MatRef backing buffer has wrong length"
        );
        Self {
            data,
            rows,
            cols,
            rs: cols,
            cs: 1,
        }
    }

    /// The transposed view (no copy; strides swap).
    pub fn t(self) -> Self {
        Self {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            rs: self.cs,
            cs: self.rs,
        }
    }

    /// Logical number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// `c = a @ b` (or `c += a @ b` when `accumulate`), packed/blocked kernel.
///
/// `c` must hold exactly `a.rows * b.cols` elements, row-major.
pub fn gemm(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], accumulate: bool) {
    gemm_fused(a, b, None, FusedAct::Identity, c, accumulate);
}

/// `c = act(a @ b + bias)` with the bias broadcast over rows; the epilogue
/// runs after the full reduction so rounding matches the unfused chain.
pub fn gemm_bias_act(a: MatRef<'_>, b: MatRef<'_>, bias: &[f32], act: FusedAct, c: &mut [f32]) {
    gemm_fused(a, b, Some(bias), act, c, false);
}

thread_local! {
    /// Reusable (packed-A, packed-B) scratch so warm GEMM calls allocate
    /// nothing. Thread-local: each rayon worker packs into its own buffers.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

fn gemm_fused(
    a: MatRef<'_>,
    b: MatRef<'_>,
    bias: Option<&[f32]>,
    act: FusedAct,
    c: &mut [f32],
    accumulate: bool,
) {
    let (m, k) = (a.rows, a.cols);
    let n = b.cols;
    assert_eq!(
        k, b.rows,
        "matmul inner dimensions differ: {} vs {}",
        k, b.rows
    );
    assert_eq!(c.len(), m * n, "gemm output buffer has wrong length");
    if let Some(bv) = bias {
        assert_eq!(bv.len(), n, "gemm bias length must equal output columns");
    }
    if c.is_empty() {
        return;
    }
    if k == 0 {
        // Empty reduction: C is all zeros (or untouched when accumulating),
        // but the epilogue still applies.
        if !accumulate {
            c.fill(0.0);
        }
        epilogue(c, n, 0, n, bias, act);
        return;
    }

    if par_worthwhile(m, n, k) && m > MC {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(blk, slab)| {
                gemm_slab(a, b, blk * MC, slab, accumulate, bias, act);
            });
    } else {
        for (blk, slab) in c.chunks_mut(MC * n).enumerate() {
            gemm_slab(a, b, blk * MC, slab, accumulate, bias, act);
        }
    }
}

/// Computes one row-slab (`mc <= MC` rows starting at `i0`) of the output.
fn gemm_slab(
    a: MatRef<'_>,
    b: MatRef<'_>,
    i0: usize,
    cslab: &mut [f32],
    accumulate: bool,
    bias: Option<&[f32]>,
    act: FusedAct,
) {
    let k = a.cols;
    let n = b.cols;
    let mc = cslab.len() / n;
    PACK_BUFS.with(|cell| {
        let bufs = &mut *cell.borrow_mut();
        let (apack, bpack) = (&mut bufs.0, &mut bufs.1);
        for j0 in (0..n).step_by(NC) {
            let nc = (n - j0).min(NC);
            for (pci, p0) in (0..k).step_by(KC).enumerate() {
                let kc = (k - p0).min(KC);
                pack_b(b, p0, kc, j0, nc, bpack);
                pack_a(a, i0, mc, p0, kc, apack);
                // First KC block seeds the accumulators (unless the caller
                // asked to accumulate); later blocks resume from C, which
                // keeps the per-element summation order sequential in k.
                let init = !accumulate && pci == 0;
                let npanels = nc.div_ceil(NR);
                let mpanels = mc.div_ceil(MR);
                for jp in 0..npanels {
                    let jr = j0 + jp * NR;
                    let nr = (nc - jp * NR).min(NR);
                    let bp = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
                    for ip in 0..mpanels {
                        let ir = ip * MR;
                        let mr = (mc - ir).min(MR);
                        let ap = &apack[ip * kc * MR..(ip + 1) * kc * MR];
                        micro_kernel(kc, ap, bp, &mut cslab[ir * n + jr..], n, mr, nr, init);
                    }
                }
            }
            epilogue(cslab, n, j0, nc, bias, act);
        }
    });
}

/// `c[r, j0..j0+nc] = act(c + bias)` over every row of the slab.
fn epilogue(
    cslab: &mut [f32],
    n: usize,
    j0: usize,
    nc: usize,
    bias: Option<&[f32]>,
    act: FusedAct,
) {
    if bias.is_none() && act == FusedAct::Identity {
        return;
    }
    let rows = cslab.len() / n.max(1);
    for r in 0..rows {
        let row = &mut cslab[r * n + j0..r * n + j0 + nc];
        match bias {
            Some(bv) => {
                for (x, &bb) in row.iter_mut().zip(&bv[j0..j0 + nc]) {
                    *x = act.activate(*x + bb);
                }
            }
            None => {
                for x in row.iter_mut() {
                    *x = act.activate(*x);
                }
            }
        }
    }
}

/// Packs `kc` columns of an `mc`-row slab of A into k-major `MR`-row panels,
/// zero-padding the ragged final panel.
fn pack_a(a: MatRef<'_>, i0: usize, mc: usize, p0: usize, kc: usize, buf: &mut Vec<f32>) {
    let mpanels = mc.div_ceil(MR);
    buf.truncate(0);
    buf.resize(mpanels * kc * MR, 0.0);
    for ip in 0..mpanels {
        let ibase = i0 + ip * MR;
        let h = (i0 + mc - ibase).min(MR);
        let panel = &mut buf[ip * kc * MR..(ip + 1) * kc * MR];
        for (p, chunk) in panel.chunks_exact_mut(MR).enumerate() {
            let kcol = p0 + p;
            for (r, slot) in chunk.iter_mut().take(h).enumerate() {
                *slot = a.at(ibase + r, kcol);
            }
        }
    }
}

/// Packs a `kc x nc` block of B into k-major `NR`-column panels,
/// zero-padding the ragged final panel.
fn pack_b(b: MatRef<'_>, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut Vec<f32>) {
    let npanels = nc.div_ceil(NR);
    buf.truncate(0);
    buf.resize(npanels * kc * NR, 0.0);
    for jp in 0..npanels {
        let jbase = j0 + jp * NR;
        let w = (j0 + nc - jbase).min(NR);
        let panel = &mut buf[jp * kc * NR..(jp + 1) * kc * NR];
        for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
            let krow = p0 + p;
            if b.cs == 1 {
                let start = krow * b.rs + jbase;
                chunk[..w].copy_from_slice(&b.data[start..start + w]);
            } else {
                for (cj, slot) in chunk.iter_mut().take(w).enumerate() {
                    *slot = b.data[krow * b.rs + (jbase + cj) * b.cs];
                }
            }
        }
    }
}

/// The `MR x NR` register tile: seeds accumulators from C (or zero when
/// `init`), sweeps the packed panels in ascending `k`, stores the valid
/// `mr x nr` region back. Plain `a*b` + `+=` — no FMA — so rounding matches
/// the naive reference bit for bit.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
    init: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !init {
        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
            accr[..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
        }
    }
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (x, &bb) in accr.iter_mut().zip(brow) {
                *x += av * bb;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr) {
        c[r * ldc..r * ldc + nr].copy_from_slice(&accr[..nr]);
    }
}

/// Retained naive reference kernel (`ikj`, ascending `k`, no zero-skip, no
/// blocking). The packed kernel is pinned to this bit for bit by the
/// differential tests; the hotpath bench reports speedup against it.
pub fn gemm_naive(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], accumulate: bool) {
    let (m, k) = (a.rows, a.cols);
    let n = b.cols;
    assert_eq!(
        k, b.rows,
        "matmul inner dimensions differ: {} vs {}",
        k, b.rows
    );
    assert_eq!(c.len(), m * n, "gemm output buffer has wrong length");
    if !accumulate {
        c.fill(0.0);
    }
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a.at(i, p);
            if b.cs == 1 {
                let brow = &b.data[p * b.rs..p * b.rs + n];
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            } else {
                for (j, o) in crow.iter_mut().enumerate() {
                    *o += av * b.data[p * b.rs + j * b.cs];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn rand_vec(rng: &mut ChaCha8Rng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.5f32..1.5)).collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{ctx}: element {i} differs: {g} vs {w}"
            );
        }
    }

    fn check_shape(m: usize, k: usize, n: usize, rng: &mut ChaCha8Rng) {
        let a = rand_vec(rng, m * k);
        let b = rand_vec(rng, k * n);
        let mut packed = vec![0.0f32; m * n];
        let mut naive = vec![0.0f32; m * n];
        gemm(
            MatRef::new(&a, m, k),
            MatRef::new(&b, k, n),
            &mut packed,
            false,
        );
        gemm_naive(
            MatRef::new(&a, m, k),
            MatRef::new(&b, k, n),
            &mut naive,
            false,
        );
        assert_bits_eq(&packed, &naive, &format!("{m}x{k}x{n}"));
    }

    #[test]
    fn packed_matches_naive_bitwise_on_edge_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Deliberately ragged vs the MR=4 / NR=16 / MC=128 tiling.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 16, 16),
            (5, 17, 19),
            (33, 7, 130),
            (130, 40, 33),
        ] {
            check_shape(m, k, n, &mut rng);
        }
    }

    #[test]
    fn packed_matches_naive_bitwise_across_kc_blocks() {
        // k > KC forces multiple KC blocks; the accumulators reload C
        // between blocks, so the result must still be bit-identical.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        check_shape(9, KC + 300, 21, &mut rng);
    }

    #[test]
    fn accumulate_adds_on_top_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (m, k, n) = (13, 37, 29);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let seed = rand_vec(&mut rng, m * n);
        let mut packed = seed.clone();
        let mut naive = seed.clone();
        gemm(
            MatRef::new(&a, m, k),
            MatRef::new(&b, k, n),
            &mut packed,
            true,
        );
        gemm_naive(
            MatRef::new(&a, m, k),
            MatRef::new(&b, k, n),
            &mut naive,
            true,
        );
        assert_bits_eq(&packed, &naive, "accumulate");
    }

    #[test]
    fn transposed_views_feed_the_kernel() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let (m, k, n) = (11, 23, 9);
        // a_t stored as [k, m]; b_t stored as [n, k].
        let a_t = rand_vec(&mut rng, k * m);
        let b_t = rand_vec(&mut rng, n * k);
        let mut packed = vec![0.0f32; m * n];
        let mut naive = vec![0.0f32; m * n];
        let a = MatRef::new(&a_t, k, m).t();
        let b = MatRef::new(&b_t, n, k).t();
        gemm(a, b, &mut packed, false);
        gemm_naive(a, b, &mut naive, false);
        assert_bits_eq(&packed, &naive, "transposed");
    }

    #[test]
    fn fused_bias_act_matches_unfused_chain() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (m, k, n) = (7, 33, 18);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let bias = rand_vec(&mut rng, n);
        for act in [FusedAct::Identity, FusedAct::Tanh, FusedAct::Relu] {
            let mut fused = vec![0.0f32; m * n];
            gemm_bias_act(
                MatRef::new(&a, m, k),
                MatRef::new(&b, k, n),
                &bias,
                act,
                &mut fused,
            );
            let mut plain = vec![0.0f32; m * n];
            gemm(
                MatRef::new(&a, m, k),
                MatRef::new(&b, k, n),
                &mut plain,
                false,
            );
            for (r, row) in plain.chunks_mut(n).enumerate() {
                for (j, x) in row.iter_mut().enumerate() {
                    *x = act.activate(*x + bias[j]);
                }
                assert_bits_eq(row, &fused[r * n..(r + 1) * n], "fused epilogue");
            }
        }
    }

    #[test]
    fn par_threshold_keys_on_flops_not_output_size() {
        // Policy-head shape: tiny output (m*n = 8192 was below the old
        // m*n threshold of 16384) but 4.2M multiply-adds of work.
        assert!(par_worthwhile(2048, 4, 512), "tall-skinny must parallelise");
        assert!(!par_worthwhile(64, 64, 8), "small products stay serial");
        assert!(
            par_worthwhile(usize::MAX, usize::MAX, usize::MAX),
            "saturates"
        );
    }

    #[test]
    fn degenerate_dims_are_safe() {
        let a: Vec<f32> = vec![];
        let b = vec![1.0f32, 2.0];
        // k = 0: result is the zero matrix.
        let mut c = vec![9.0f32; 2];
        gemm(MatRef::new(&a, 1, 0), MatRef::new(&a, 0, 2), &mut c, false);
        assert_eq!(c, vec![0.0, 0.0]);
        // m = 0 / n = 0: empty output, no panic.
        let mut empty: Vec<f32> = vec![];
        gemm(
            MatRef::new(&a, 0, 2),
            MatRef::new(&b, 2, 1),
            &mut empty,
            false,
        );
        gemm(
            MatRef::new(&b, 1, 2),
            MatRef::new(&a, 2, 0),
            &mut empty,
            false,
        );
    }
}
