//! Dense row-major `f32` tensors.
//!
//! The tensor type is deliberately simple: a shape vector plus a flat data
//! buffer. Stellaris' policy networks are small (Table II of the paper:
//! 2x256 MLPs and three-layer CNNs), so the priority is predictable memory
//! behaviour and cheap cloning for the gradient-message pipeline rather than
//! a full broadcasting engine. Matrix multiplication runs on the packed,
//! cache-blocked kernel in [`crate::gemm`], which parallelises over row
//! slabs with rayon once the FLOP count (`m*n*k`, not output size) is large
//! enough to amortise the fork.

use crate::gemm::{self, FusedAct, MatRef};
use rand::Rng;

/// A dense row-major tensor of `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and shape. Panics if the element
    /// count does not match the shape product.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "tensor data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// A scalar (shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![1],
            data: vec![value],
        }
    }

    /// Standard-normal initialised tensor scaled by `std`.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        // Box-Muller transform; two samples per trig pair.
        while data.len() < numel {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < numel {
                data.push(r * theta.sin() * std);
            }
        }
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Uniformly initialised tensor over `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(lo..hi)).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows when interpreted as a 2-D matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns when interpreted as a 2-D matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element accessor for 2-D tensors.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape element count mismatch");
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// In-place reshape (no data copy beyond the shape vector).
    pub fn reshaped(mut self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape element count mismatch");
        self.shape = shape.to_vec();
        self
    }

    /// Matrix transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![c, r],
            data: out,
        }
    }

    /// Matrix product of two 2-D tensors (`[m,k] x [k,n] -> [m,n]`).
    ///
    /// Runs the packed/blocked GEMM in [`crate::gemm`]; parallelises over
    /// row slabs once `m*n*k` crosses the FLOP threshold.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, n) = self.matmul_dims(rhs);
        let mut out = Tensor::zeros(&[m, n]);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// In-place matrix product: `out = self @ rhs` without allocating.
    /// `out` must already have shape `[m, n]`.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        let (m, n) = self.matmul_dims(rhs);
        assert_eq!(out.shape, [m, n], "matmul_into output shape mismatch");
        let k = self.shape[1];
        gemm::gemm(
            MatRef::new(&self.data, m, k),
            MatRef::new(&rhs.data, k, n),
            &mut out.data,
            false,
        );
    }

    /// Fused dense-layer forward: `act(self @ w + bias)` in one pass.
    ///
    /// The bias add and activation run as a GEMM epilogue after the full
    /// reduction, so the result rounds identically to the unfused
    /// `matmul` → [`Tensor::add_row_broadcast`] → [`Tensor::map`] chain.
    pub fn matmul_bias_act(&self, w: &Tensor, bias: &Tensor, act: FusedAct) -> Tensor {
        let (m, n) = self.matmul_dims(w);
        assert_eq!(bias.numel(), n, "matmul_bias_act bias length mismatch");
        let k = self.shape[1];
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm_bias_act(
            MatRef::new(&self.data, m, k),
            MatRef::new(&w.data, k, n),
            &bias.data,
            act,
            &mut out.data,
        );
        out
    }

    fn matmul_dims(&self, rhs: &Tensor) -> (usize, usize) {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (k, k2) = (self.shape[1], rhs.shape[0]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        (self.shape[0], rhs.shape[1])
    }

    /// Elementwise binary operation against a same-shaped tensor.
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "zip_map shape mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        data.extend(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise binary operation written into an existing tensor
    /// (`out[i] = f(self[i], rhs[i])`, no allocation).
    pub fn zip_map_into(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32, out: &mut Tensor) {
        assert_eq!(self.shape, rhs.shape, "zip_map_into shape mismatch");
        assert_eq!(self.shape, out.shape, "zip_map_into output shape mismatch");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = Vec::with_capacity(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise unary map written into an existing tensor (no allocation).
    pub fn map_into(&self, f: impl Fn(f32) -> f32, out: &mut Tensor) {
        assert_eq!(self.shape, out.shape, "map_into output shape mismatch");
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// Elementwise addition.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Elementwise multiplication.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Adds `rhs` scaled by `alpha` in place (`self += alpha * rhs`).
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Plain in-place addition (`self += rhs`, same shape).
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place addition ignoring shape (`self.flat += rhs.flat`); used by
    /// the reshape backward, where element counts match but shapes differ.
    pub fn add_assign_flat(&mut self, rhs: &Tensor) {
        assert_eq!(
            self.data.len(),
            rhs.data.len(),
            "add_assign_flat element count mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Accumulating unary map: `self[i] += f(src[i])`.
    pub fn add_assign_map(&mut self, src: &Tensor, f: impl Fn(f32) -> f32) {
        assert_eq!(self.shape, src.shape, "add_assign_map shape mismatch");
        for (a, &x) in self.data.iter_mut().zip(src.data.iter()) {
            *a += f(x);
        }
    }

    /// Accumulating binary map: `self[i] += f(x[i], y[i])`.
    pub fn add_assign_zip(&mut self, x: &Tensor, y: &Tensor, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape, x.shape, "add_assign_zip shape mismatch");
        assert_eq!(self.shape, y.shape, "add_assign_zip shape mismatch");
        for ((a, &xv), &yv) in self.data.iter_mut().zip(x.data.iter()).zip(y.data.iter()) {
            *a += f(xv, yv);
        }
    }

    /// Accumulating ternary map: `self[i] += f(x[i], y[i], z[i])`.
    pub fn add_assign_zip3(
        &mut self,
        x: &Tensor,
        y: &Tensor,
        z: &Tensor,
        f: impl Fn(f32, f32, f32) -> f32,
    ) {
        assert_eq!(self.shape, x.shape, "add_assign_zip3 shape mismatch");
        assert_eq!(self.shape, y.shape, "add_assign_zip3 shape mismatch");
        assert_eq!(self.shape, z.shape, "add_assign_zip3 shape mismatch");
        for (((a, &xv), &yv), &zv) in self
            .data
            .iter_mut()
            .zip(x.data.iter())
            .zip(y.data.iter())
            .zip(z.data.iter())
        {
            *a += f(xv, yv, zv);
        }
    }

    /// Reshapes this tensor in place to `shape` and zero-fills it, keeping
    /// the existing heap allocation whenever the capacity suffices. This is
    /// the gradient-arena recycling primitive: a warm arena buffer is reused
    /// across backward passes without touching the allocator.
    pub(crate) fn reuse_as_zeros(&mut self, shape: &[usize]) {
        let numel: usize = shape.iter().product();
        // truncate(0) rather than clear(): same semantics on Vec, but the
        // name `clear` collides with locking methods elsewhere in the
        // workspace and trips stellaris-analyze's name-based call graph.
        self.shape.truncate(0);
        self.shape.extend_from_slice(shape);
        self.data.truncate(0);
        self.data.resize(numel, 0.0);
    }

    /// Becomes a copy of `src` (shape and data), reusing this tensor's heap
    /// allocations whenever their capacity suffices. The in-place counterpart
    /// of `clone()` for warm gradient buffers.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.truncate(0);
        self.shape.extend_from_slice(&src.shape);
        self.data.truncate(0);
        self.data.extend_from_slice(&src.data);
    }

    /// Scales every element in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Adds a row vector (`[n]` or `[1,n]`) to every row of a `[m,n]` tensor.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "add_row_broadcast lhs must be 2-D");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(row.numel(), n, "broadcast row length mismatch");
        let mut data = self.data.clone();
        for i in 0..m {
            for j in 0..n {
                data[i * n + j] += row.data[j];
            }
        }
        Tensor {
            shape: vec![m, n],
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm of the buffer.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm of the buffer.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Extracts row `i` of a 2-D tensor as a new `[n]` tensor.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.shape.len(), 2, "row() requires a 2-D tensor");
        let n = self.shape[1];
        Tensor {
            shape: vec![n],
            data: self.data[i * n..(i + 1) * n].to_vec(),
        }
    }

    /// Stacks `[n]`-shaped rows into a `[m,n]` matrix.
    pub fn stack_rows(rows: &[Vec<f32>]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows requires at least one row");
        let n = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n);
        for r in rows {
            assert_eq!(r.len(), n, "stack_rows ragged input");
            data.extend_from_slice(r);
        }
        Tensor {
            shape: vec![rows.len(), n],
            data,
        }
    }
}

/// Flattens a list of tensors into one contiguous buffer (for snapshots and
/// gradient messages).
pub fn flatten_all(tensors: &[Tensor]) -> Vec<f32> {
    let total: usize = tensors.iter().map(Tensor::numel).sum();
    let mut out = Vec::with_capacity(total);
    for t in tensors {
        out.extend_from_slice(t.data());
    }
    out
}

/// Inverse of [`flatten_all`]: splits a flat buffer back into tensors with
/// the given shapes. Panics if the total element count does not match.
pub fn unflatten_all(flat: &[f32], shapes: &[Vec<usize>]) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(shapes.len());
    let mut offset = 0usize;
    for shape in shapes {
        let n: usize = shape.iter().product();
        out.push(Tensor::from_vec(flat[offset..offset + n].to_vec(), shape));
        offset += n;
    }
    assert_eq!(offset, flat.len(), "unflatten_all length mismatch");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matmul_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = Tensor::randn(&[64, 300], 1.0, &mut rng);
        let b = Tensor::randn(&[300, 300], 1.0, &mut rng);
        // Force the parallel path via a large output and compare against a
        // reference triple loop.
        let c = a.matmul(&b);
        let mut want = vec![0.0f32; 64 * 300];
        for i in 0..64 {
            for kk in 0..300 {
                let av = a.at2(i, kk);
                for j in 0..300 {
                    want[i * 300 + j] += av * b.at2(kk, j);
                }
            }
        }
        for (got, want) in c.data().iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_row_adds_bias() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ts = vec![
            Tensor::randn(&[3, 4], 1.0, &mut rng),
            Tensor::randn(&[4], 1.0, &mut rng),
            Tensor::randn(&[2, 2, 2], 1.0, &mut rng),
        ];
        let flat = flatten_all(&ts);
        let shapes: Vec<Vec<usize>> = ts.iter().map(|t| t.shape().to_vec()).collect();
        let back = unflatten_all(&flat, &shapes);
        assert_eq!(ts, back);
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "matmul inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[4]);
        let b = Tensor::full(&[4], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let m = Tensor::stack_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.at2(1, 0), 3.0);
    }

    #[test]
    fn tall_skinny_policy_head_parallelises_and_matches_reference() {
        // Regression for the parallel heuristic: a policy-head product has a
        // tiny output (m*n = 8192, below the old m*n threshold of 16384) but
        // lots of work. The FLOP gate must take the parallel path, and the
        // result must stay bit-identical to the naive reference.
        use crate::gemm::{gemm_naive, par_worthwhile, MatRef};
        let (m, k, n) = (2048usize, 512usize, 4usize);
        assert!(m * n < 16 * 1024, "shape must sit below the old threshold");
        assert!(par_worthwhile(m, n, k), "FLOP gate must parallelise this");
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let c = a.matmul(&b);
        let mut want = vec![0.0f32; m * n];
        gemm_naive(
            MatRef::new(a.data(), m, k),
            MatRef::new(b.data(), k, n),
            &mut want,
            false,
        );
        for (got, want) in c.data().iter().zip(want.iter()) {
            assert_eq!(got.to_bits(), want.to_bits(), "{got} vs {want}");
        }
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = Tensor::randn(&[9, 17], 1.0, &mut rng);
        let b = Tensor::randn(&[17, 5], 1.0, &mut rng);
        let mut out = Tensor::full(&[9, 5], 7.0); // stale values must be overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn map_and_zip_map_into_variants_match() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![0.5, 0.5, 2.0, 2.0], &[2, 2]);
        let mut out = Tensor::zeros(&[2, 2]);
        a.zip_map_into(&b, |x, y| x * y, &mut out);
        assert_eq!(out, a.zip_map(&b, |x, y| x * y));
        a.map_into(|x| x.abs(), &mut out);
        assert_eq!(out, a.map(f32::abs));
    }

    #[test]
    fn fused_matmul_bias_act_matches_unfused_chain() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x = Tensor::randn(&[6, 13], 1.0, &mut rng);
        let w = Tensor::randn(&[13, 4], 0.5, &mut rng);
        let b = Tensor::randn(&[4], 0.5, &mut rng);
        for (act, f) in [
            (FusedAct::Identity, None),
            (FusedAct::Tanh, Some(f32::tanh as fn(f32) -> f32)),
            (
                FusedAct::Relu,
                Some((|v: f32| v.max(0.0)) as fn(f32) -> f32),
            ),
        ] {
            let fused = x.matmul_bias_act(&w, &b, act);
            let mut plain = x.matmul(&w).add_row_broadcast(&b);
            if let Some(f) = f {
                plain = plain.map(f);
            }
            assert_eq!(fused, plain, "fused {act:?} must match unfused chain");
        }
    }

    #[test]
    fn accumulate_helpers_match_axpy_semantics() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
        a.add_assign_map(&b, |x| -x);
        assert_eq!(a.data(), &[1.0, 1.0, 1.0]);
        a.add_assign_zip(&b, &b, |x, y| x * y);
        assert_eq!(a.data(), &[2.0, 5.0, 10.0]);
        a.add_assign_zip3(&b, &b, &b, |x, y, z| x * y * z);
        assert_eq!(a.data(), &[3.0, 13.0, 37.0]);
        let flat = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3, 1]);
        a.add_assign_flat(&flat);
        assert_eq!(a.data(), &[4.0, 14.0, 38.0]);
    }

    #[test]
    fn reuse_as_zeros_keeps_capacity() {
        let mut t = Tensor::from_vec(vec![1.0; 64], &[8, 8]);
        let cap = t.data.capacity();
        t.reuse_as_zeros(&[4, 4]);
        assert_eq!(t.shape(), &[4, 4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert_eq!(t.data.capacity(), cap, "allocation must be reused");
    }
}
