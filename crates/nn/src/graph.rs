//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied to [`Var`] handles; calling
//! [`Graph::backward`] replays the tape in reverse, accumulating gradients.
//! Each learner function in Stellaris builds a fresh graph per mini-batch
//! (mirroring the per-invocation lifetime of a serverless function), so the
//! tape never outlives one gradient computation and node values can be
//! captured by clone without memory pressure.

use std::cell::{Cell, RefCell};

use stellaris_telemetry as telemetry;

use crate::conv::{col2im, im2col, Conv2dSpec};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// The node index inside its graph.
    #[inline]
    pub fn id(self) -> usize {
        self.0
    }
}

/// Gradient callback: receives the upstream gradient for the node and
/// returns `(parent_id, gradient_contribution)` pairs.
type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<(usize, Tensor)>>;

struct Node {
    value: Tensor,
    backward: Option<BackwardFn>,
}

/// A single-use autodiff tape.
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
    /// Telemetry timestamp of tape creation. The forward pass *is* the
    /// tape's lifetime up to `backward`, so the first `backward` call emits
    /// a retroactive `nn.forward` span covering `[born_us, now]`.
    born_us: u64,
    forward_emitted: Cell<bool>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::with_capacity(64)),
            born_us: telemetry::now_us(),
            forward_emitted: Cell::new(false),
        }
    }

    fn push(&self, value: Tensor, backward: Option<BackwardFn>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, backward });
        Var(nodes.len() - 1)
    }

    /// Inserts a leaf node (input or parameter). Gradients accumulate here
    /// but do not propagate further.
    pub fn input(&self, value: Tensor) -> Var {
        self.push(value, None)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Clones the current value of a node.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of a node's value.
    pub fn shape_of(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0].value.shape().to_vec()
    }

    /// Cuts the tape: returns a new leaf holding the same value so no
    /// gradient flows into `v`'s subgraph.
    pub fn detach(&self, v: Var) -> Var {
        let value = self.value(v);
        self.input(value)
    }

    // ----- elementwise binary ops ------------------------------------------------

    /// Elementwise addition of same-shaped tensors.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = va.add(&vb);
        self.push(
            out,
            Some(Box::new(move |g| vec![(a.0, g.clone()), (b.0, g.clone())])),
        )
    }

    /// Elementwise subtraction.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = va.sub(&vb);
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(a.0, g.clone()), (b.0, g.map(|x| -x))]
            })),
        )
    }

    /// Elementwise multiplication.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = va.mul(&vb);
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(a.0, g.mul(&vb)), (b.0, g.mul(&va))]
            })),
        )
    }

    /// Elementwise division.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = va.zip_map(&vb, |x, y| x / y);
        self.push(
            out,
            Some(Box::new(move |g| {
                let da = g.zip_map(&vb, |gv, y| gv / y);
                let db = g
                    .zip_map(&va, |gv, x| gv * x)
                    .zip_map(&vb, |gx, y| -gx / (y * y));
                vec![(a.0, da), (b.0, db)]
            })),
        )
    }

    /// Elementwise minimum; gradient routes to the smaller operand (ties to `a`).
    pub fn minimum(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = va.zip_map(&vb, f32::min);
        let mask = va.zip_map(&vb, |x, y| if x <= y { 1.0 } else { 0.0 });
        self.push(
            out,
            Some(Box::new(move |g| {
                let da = g.mul(&mask);
                let db = g.zip_map(&mask, |gv, m| gv * (1.0 - m));
                vec![(a.0, da), (b.0, db)]
            })),
        )
    }

    /// Elementwise maximum; gradient routes to the larger operand (ties to `a`).
    pub fn maximum(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = va.zip_map(&vb, f32::max);
        let mask = va.zip_map(&vb, |x, y| if x >= y { 1.0 } else { 0.0 });
        self.push(
            out,
            Some(Box::new(move |g| {
                let da = g.mul(&mask);
                let db = g.zip_map(&mask, |gv, m| gv * (1.0 - m));
                vec![(a.0, da), (b.0, db)]
            })),
        )
    }

    // ----- scalar / rowwise broadcasts -------------------------------------------

    /// Multiplies every element by a constant.
    pub fn scale(&self, a: Var, c: f32) -> Var {
        let out = self.value(a).scaled(c);
        self.push(out, Some(Box::new(move |g| vec![(a.0, g.scaled(c))])))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, a: Var, c: f32) -> Var {
        let out = self.value(a).map(|x| x + c);
        self.push(out, Some(Box::new(move |g| vec![(a.0, g.clone())])))
    }

    /// Adds a scalar-valued node (`[1]`) to every element of `a`, scaled by
    /// `coeff`: `out = a + coeff * s`.
    pub fn add_scalar_var(&self, a: Var, s: Var, coeff: f32) -> Var {
        let sval = self.value(s);
        assert_eq!(sval.numel(), 1, "add_scalar_var expects scalar rhs");
        let out = self.value(a).map(|x| x + coeff * sval.data()[0]);
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(a.0, g.clone()), (s.0, Tensor::scalar(coeff * g.sum()))]
            })),
        )
    }

    /// Adds a `[n]` bias row to every row of a `[m,n]` matrix.
    pub fn add_bias(&self, a: Var, bias: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(bias);
        let n = vb.numel();
        let out = va.add_row_broadcast(&vb);
        self.push(
            out,
            Some(Box::new(move |g| {
                let mut db = vec![0.0f32; n];
                for row in g.data().chunks(n) {
                    for (acc, &gv) in db.iter_mut().zip(row.iter()) {
                        *acc += gv;
                    }
                }
                vec![(a.0, g.clone()), (bias.0, Tensor::from_vec(db, &[n]))]
            })),
        )
    }

    /// Subtracts a `[n]` row from every row of a `[m,n]` matrix.
    pub fn sub_row(&self, a: Var, row: Var) -> Var {
        let neg = self.scale(row, -1.0);
        self.add_bias(a, neg)
    }

    /// Multiplies every row of a `[m,n]` matrix elementwise by a `[n]` row.
    pub fn mul_row(&self, a: Var, row: Var) -> Var {
        let va = self.value(a);
        let vr = self.value(row);
        assert_eq!(va.shape().len(), 2, "mul_row lhs must be 2-D");
        let n = va.shape()[1];
        assert_eq!(vr.numel(), n, "mul_row row length mismatch");
        let mut out = va.clone();
        for r in out.data_mut().chunks_mut(n) {
            for (x, &w) in r.iter_mut().zip(vr.data().iter()) {
                *x *= w;
            }
        }
        self.push(
            out,
            Some(Box::new(move |g| {
                let mut da = g.clone();
                for r in da.data_mut().chunks_mut(n) {
                    for (x, &w) in r.iter_mut().zip(vr.data().iter()) {
                        *x *= w;
                    }
                }
                let mut drow = vec![0.0f32; n];
                for (grow, arow) in g.data().chunks(n).zip(va.data().chunks(n)) {
                    for j in 0..n {
                        drow[j] += grow[j] * arow[j];
                    }
                }
                vec![(a.0, da), (row.0, Tensor::from_vec(drow, &[n]))]
            })),
        )
    }

    // ----- elementwise unary ops --------------------------------------------------

    fn unary(
        &self,
        a: Var,
        f: impl Fn(f32) -> f32,
        dfdx_from_out: impl Fn(f32, f32) -> f32 + 'static,
    ) -> Var {
        let va = self.value(a);
        let out = va.map(f);
        let out_cap = out.clone();
        self.push(
            out,
            Some(Box::new(move |g| {
                let mut d = g.clone();
                for ((dv, &x), &y) in d
                    .data_mut()
                    .iter_mut()
                    .zip(va.data().iter())
                    .zip(out_cap.data().iter())
                {
                    *dv *= dfdx_from_out(x, y);
                }
                vec![(a.0, d)]
            })),
        )
    }

    /// Negation.
    pub fn neg(&self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.unary(a, f32::tanh, |_, y| 1.0 - y * y)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.unary(a, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Exponential.
    pub fn exp(&self, a: Var) -> Var {
        self.unary(a, f32::exp, |_, y| y)
    }

    /// Natural logarithm (inputs are assumed positive).
    pub fn log(&self, a: Var) -> Var {
        self.unary(a, f32::ln, |x, _| 1.0 / x)
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        self.unary(a, |x| x * x, |x, _| 2.0 * x)
    }

    /// Elementwise square root (inputs assumed non-negative).
    pub fn sqrt(&self, a: Var) -> Var {
        self.unary(a, f32::sqrt, |_, y| 0.5 / y.max(1e-12))
    }

    /// Clamps values to `[lo, hi]`; gradient is gated to the interior.
    pub fn clamp(&self, a: Var, lo: f32, hi: f32) -> Var {
        self.unary(
            a,
            move |x| x.clamp(lo, hi),
            move |x, _| if x > lo && x < hi { 1.0 } else { 0.0 },
        )
    }

    /// Elementwise `min(a, c)` against a constant; gradient flows where `a < c`.
    pub fn min_scalar(&self, a: Var, c: f32) -> Var {
        self.unary(
            a,
            move |x| x.min(c),
            move |x, _| if x <= c { 1.0 } else { 0.0 },
        )
    }

    // ----- reductions ---------------------------------------------------------------

    /// Sum of all elements, producing a `[1]` scalar node.
    pub fn sum_all(&self, a: Var) -> Var {
        let va = self.value(a);
        let shape = va.shape().to_vec();
        let out = Tensor::scalar(va.sum());
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(a.0, Tensor::full(&shape, g.data()[0]))]
            })),
        )
    }

    /// Mean of all elements, producing a `[1]` scalar node.
    pub fn mean_all(&self, a: Var) -> Var {
        let n = self.value(a).numel().max(1);
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n as f32)
    }

    /// Row sums of a `[m,n]` matrix, producing a `[m]` vector node.
    pub fn sum_rows(&self, a: Var) -> Var {
        let va = self.value(a);
        assert_eq!(va.shape().len(), 2, "sum_rows requires a 2-D tensor");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        let data: Vec<f32> = va.data().chunks(n).map(|r| r.iter().sum()).collect();
        self.push(
            Tensor::from_vec(data, &[m]),
            Some(Box::new(move |g| {
                let mut d = vec![0.0f32; m * n];
                for (i, chunk) in d.chunks_mut(n).enumerate() {
                    chunk.fill(g.data()[i]);
                }
                vec![(a.0, Tensor::from_vec(d, &[m, n]))]
            })),
        )
    }

    /// Weighted mean `sum(a * w) / sum(w)` against a constant weight vector.
    pub fn weighted_mean(&self, a: Var, weights: &Tensor) -> Var {
        let w = self.input(weights.clone());
        let prod = self.mul(a, w);
        let s = self.sum_all(prod);
        self.scale(s, 1.0 / weights.sum().max(1e-12))
    }

    // ----- linear algebra -------------------------------------------------------------

    /// Matrix product of 2-D nodes.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let out = va.matmul(&vb);
        self.push(
            out,
            Some(Box::new(move |g| {
                let da = g.matmul(&vb.transpose());
                let db = va.transpose().matmul(g);
                vec![(a.0, da), (b.0, db)]
            })),
        )
    }

    /// Reshape (no data movement in the forward value; gradient is reshaped back).
    pub fn reshape(&self, a: Var, shape: &[usize]) -> Var {
        let va = self.value(a);
        let old_shape = va.shape().to_vec();
        let out = va.reshaped(shape);
        self.push(
            out,
            Some(Box::new(move |g| vec![(a.0, g.reshape(&old_shape))])),
        )
    }

    // ----- softmax family ----------------------------------------------------------

    /// Row-wise log-softmax of a `[m,n]` logits matrix.
    pub fn log_softmax(&self, logits: Var) -> Var {
        let v = self.value(logits);
        assert_eq!(v.shape().len(), 2, "log_softmax requires a 2-D tensor");
        let (m, n) = (v.shape()[0], v.shape()[1]);
        let mut out = vec![0.0f32; m * n];
        for (row_in, row_out) in v.data().chunks(n).zip(out.chunks_mut(n)) {
            let mx = row_in.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = row_in.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln() + mx;
            for (o, &x) in row_out.iter_mut().zip(row_in.iter()) {
                *o = x - lse;
            }
        }
        let out = Tensor::from_vec(out, &[m, n]);
        let out_cap = out.clone();
        self.push(
            out,
            Some(Box::new(move |g| {
                // d logits = g - softmax * rowsum(g)
                let mut d = g.clone();
                for (drow, orow) in d.data_mut().chunks_mut(n).zip(out_cap.data().chunks(n)) {
                    let gsum: f32 = drow.iter().sum();
                    for (dv, &lo) in drow.iter_mut().zip(orow.iter()) {
                        *dv -= lo.exp() * gsum;
                    }
                }
                vec![(logits.0, d)]
            })),
        )
    }

    /// Gathers one column per row: `out[i] = a[i, idx[i]]`, producing `[m]`.
    pub fn gather_cols(&self, a: Var, idx: &[usize]) -> Var {
        let va = self.value(a);
        assert_eq!(va.shape().len(), 2, "gather_cols requires a 2-D tensor");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        assert_eq!(idx.len(), m, "gather_cols index length mismatch");
        let data: Vec<f32> = idx.iter().enumerate().map(|(i, &j)| va.at2(i, j)).collect();
        let idx = idx.to_vec();
        self.push(
            Tensor::from_vec(data, &[m]),
            Some(Box::new(move |g| {
                let mut d = vec![0.0f32; m * n];
                for (i, &j) in idx.iter().enumerate() {
                    d[i * n + j] = g.data()[i];
                }
                vec![(a.0, Tensor::from_vec(d, &[m, n]))]
            })),
        )
    }

    // ----- convolution ---------------------------------------------------------------

    /// 2-D convolution: input `[b,c,h,w]`, weight `[o,c,kh,kw]`, bias `[o]`.
    pub fn conv2d(&self, input: Var, weight: Var, bias: Var, stride: usize) -> Var {
        let x = self.value(input);
        let w = self.value(weight);
        let bv = self.value(bias);
        let spec = Conv2dSpec::infer(x.shape(), w.shape(), stride);
        let cols = im2col(&x, &spec); // [b] of [ckk, oh*ow]
        let w2 = w.reshape(&[spec.out_c, spec.ckk()]);
        let (b, oc, oh, ow) = (spec.batch, spec.out_c, spec.out_h, spec.out_w);
        let mut out = Vec::with_capacity(b * oc * oh * ow);
        for col in &cols {
            let o = w2.matmul(col); // [oc, oh*ow]
            for (ch, chunk) in o.data().chunks(oh * ow).enumerate() {
                let beta = bv.data()[ch];
                out.extend(chunk.iter().map(|&v| v + beta));
            }
        }
        let out = Tensor::from_vec(out, &[b, oc, oh, ow]);
        let x_shape = x.shape().to_vec();
        let w_shape = w.shape().to_vec();
        self.push(
            out,
            Some(Box::new(move |g| {
                let hw = oh * ow;
                let mut dw = Tensor::zeros(&[spec.out_c, spec.ckk()]);
                let mut db = vec![0.0f32; oc];
                let mut dx = Tensor::zeros(&x_shape);
                let w2t = w2.transpose();
                for (bi, col) in cols.iter().enumerate() {
                    let gslice = &g.data()[bi * oc * hw..(bi + 1) * oc * hw];
                    let gmat = Tensor::from_vec(gslice.to_vec(), &[oc, hw]);
                    dw.axpy(1.0, &gmat.matmul(&col.transpose()));
                    for (ch, chunk) in gslice.chunks(hw).enumerate() {
                        db[ch] += chunk.iter().sum::<f32>();
                    }
                    let dcol = w2t.matmul(&gmat); // [ckk, hw]
                    col2im(&dcol, &spec, bi, &mut dx);
                }
                vec![
                    (input.0, dx),
                    (weight.0, dw.reshape(&w_shape)),
                    (bias.0, Tensor::from_vec(db, &[oc])),
                ]
            })),
        )
    }

    // ----- backward pass ------------------------------------------------------------

    /// Runs reverse-mode accumulation from the scalar node `loss` and returns
    /// the gradients of the requested variables (zeros where disconnected).
    ///
    /// The first call emits a retroactive `nn.forward` span (tape creation
    /// to now — the window in which all forward ops were recorded) and every
    /// call runs under an `nn.backward` span; tape sizes feed the
    /// `stellaris_nn_backward_nodes` histogram.
    pub fn backward(&self, loss: Var, wrt: &[Var]) -> Vec<Tensor> {
        let nodes = self.nodes.borrow();
        if !self.forward_emitted.replace(true) {
            let fwd_end = telemetry::now_us();
            telemetry::span_closed(
                "nn.forward",
                self.born_us,
                fwd_end.saturating_sub(self.born_us),
                vec![("nodes", nodes.len().into())],
            );
        }
        let _span = telemetry::span_with("nn.backward", vec![("nodes", nodes.len().into())]);
        telemetry::global()
            .histogram("stellaris_nn_backward_nodes")
            .record(u64::try_from(nodes.len()).unwrap_or(u64::MAX));
        assert_eq!(
            nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss node"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.0] = Some(Tensor::ones(nodes[loss.0].value.shape()));
        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            if let Some(back) = &nodes[i].backward {
                for (pid, contrib) in back(&g) {
                    match &mut grads[pid] {
                        Some(acc) => acc.axpy(1.0, &contrib),
                        slot @ None => *slot = Some(contrib),
                    }
                }
            }
            // Leaf gradients for requested vars must survive; restore.
            grads[i] = Some(g);
        }
        wrt.iter()
            .map(|v| {
                grads[v.0]
                    .clone()
                    .unwrap_or_else(|| Tensor::zeros(nodes[v.0].value.shape()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Central-difference gradient check for a scalar function of one tensor.
    fn grad_check(build: impl Fn(&Graph, Var) -> Var, x0: &Tensor, tol: f32) {
        let g = Graph::new();
        let x = g.input(x0.clone());
        let loss = build(&g, x);
        let analytic = g.backward(loss, &[x]).remove(0);

        let eps = 1e-3f32;
        for i in 0..x0.numel() {
            let mut lo = x0.clone();
            lo.data_mut()[i] -= eps;
            let mut hi = x0.clone();
            hi.data_mut()[i] += eps;
            let gl = Graph::new();
            let fl = gl.value(build(&gl, gl.input(lo)));
            let gh = Graph::new();
            let fh = gh.value(build(&gh, gh.input(hi)));
            let numeric = (fh.data()[0] - fl.data()[0]) / (2.0 * eps);
            let got = analytic.data()[i];
            assert!(
                (got - numeric).abs() < tol * (1.0 + numeric.abs()),
                "elem {i}: analytic {got} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_tanh_square_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x0 = Tensor::randn(&[2, 3], 1.0, &mut rng);
        grad_check(
            |g, x| {
                let t = g.tanh(x);
                let s = g.square(t);
                g.mean_all(s)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x0 = Tensor::randn(&[3, 4], 0.5, &mut rng);
        let w = Tensor::randn(&[4, 2], 0.5, &mut rng);
        grad_check(
            move |g, x| {
                let wv = g.input(w.clone());
                let y = g.matmul(x, wv);
                g.sum_all(y)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_weight_side() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::randn(&[3, 4], 0.5, &mut rng);
        let w0 = Tensor::randn(&[4, 2], 0.5, &mut rng);
        grad_check(
            move |g, w| {
                let av = g.input(a.clone());
                let y = g.matmul(av, w);
                let sq = g.square(y);
                g.mean_all(sq)
            },
            &w0,
            1e-2,
        );
    }

    #[test]
    fn grad_log_softmax_gather() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let x0 = Tensor::randn(&[4, 5], 1.0, &mut rng);
        grad_check(
            |g, x| {
                let lsm = g.log_softmax(x);
                let picked = g.gather_cols(lsm, &[0, 2, 4, 1]);
                g.mean_all(picked)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_div_and_exp() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x0 = Tensor::rand_uniform(&[6], 0.5, 2.0, &mut rng);
        grad_check(
            |g, x| {
                let e = g.exp(x);
                let d = g.div(e, x);
                g.mean_all(d)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_minimum_maximum() {
        let x0 = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -0.2], &[4]);
        let other = Tensor::from_vec(vec![0.0, 0.0, 1.0, -1.0], &[4]);
        grad_check(
            move |g, x| {
                let o = g.input(other.clone());
                let mn = g.minimum(x, o);
                let mx = g.maximum(mn, o);
                let s = g.square(mx);
                g.sum_all(s)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_clamp_interior_only() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]));
        let c = g.clamp(x, -1.0, 1.0);
        let loss = g.sum_all(c);
        let grad = g.backward(loss, &[x]).remove(0);
        assert_eq!(grad.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn grad_bias_broadcast() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let b0 = Tensor::randn(&[3], 1.0, &mut rng);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        grad_check(
            move |g, b| {
                let av = g.input(a.clone());
                let y = g.add_bias(av, b);
                let s = g.square(y);
                g.mean_all(s)
            },
            &b0,
            1e-2,
        );
    }

    #[test]
    fn grad_mul_row() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let r0 = Tensor::randn(&[3], 1.0, &mut rng);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        grad_check(
            move |g, r| {
                let av = g.input(a.clone());
                let y = g.mul_row(av, r);
                g.sum_all(y)
            },
            &r0,
            1e-2,
        );
    }

    #[test]
    fn grad_sum_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let x0 = Tensor::randn(&[3, 4], 1.0, &mut rng);
        grad_check(
            |g, x| {
                let rows = g.sum_rows(x);
                let sq = g.square(rows);
                g.mean_all(sq)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_conv2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x0 = Tensor::randn(&[2, 2, 5, 5], 0.5, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[3], 0.5, &mut rng);
        grad_check(
            move |g, x| {
                let wv = g.input(w.clone());
                let bv = g.input(b.clone());
                let y = g.conv2d(x, wv, bv, 2);
                let s = g.square(y);
                g.mean_all(s)
            },
            &x0,
            2e-2,
        );
    }

    #[test]
    fn grad_conv2d_weight_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.5, &mut rng);
        let w0 = Tensor::randn(&[2, 2, 2, 2], 0.5, &mut rng);
        grad_check(
            move |g, w| {
                let xv = g.input(x.clone());
                let bv = g.input(Tensor::zeros(&[2]));
                let y = g.conv2d(xv, w, bv, 1);
                g.mean_all(y)
            },
            &w0,
            2e-2,
        );
    }

    #[test]
    fn detach_blocks_gradient() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2.0], &[1]));
        let y = g.square(x);
        let d = g.detach(y);
        let loss = g.mul(d, x); // loss = detach(x^2) * x; d loss/dx should be x^2 only
        let grad = g.backward(loss, &[x]).remove(0);
        assert!((grad.data()[0] - 4.0).abs() < 1e-6, "{}", grad.data()[0]);
    }

    #[test]
    fn disconnected_grad_is_zero() {
        let g = Graph::new();
        let x = g.input(Tensor::ones(&[3]));
        let y = g.input(Tensor::ones(&[1]));
        let loss = g.mean_all(y);
        let grad = g.backward(loss, &[x]).remove(0);
        assert_eq!(grad, Tensor::zeros(&[3]));
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // loss = x*x + x  => dloss/dx = 2x + 1
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![3.0], &[1]));
        let xx = g.mul(x, x);
        let s = g.add(xx, x);
        let loss = g.sum_all(s);
        let grad = g.backward(loss, &[x]).remove(0);
        assert!((grad.data()[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn add_scalar_var_broadcasts_and_backprops() {
        let g = Graph::new();
        let a = g.input(Tensor::ones(&[4]));
        let s = g.input(Tensor::scalar(2.0));
        let y = g.add_scalar_var(a, s, -1.0);
        assert_eq!(g.value(y).data(), &[-1.0, -1.0, -1.0, -1.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss, &[a, s]);
        assert_eq!(grads[0], Tensor::ones(&[4]));
        assert!((grads[1].data()[0] + 4.0).abs() < 1e-6);
    }
}
