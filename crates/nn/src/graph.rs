//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied to [`Var`] handles; calling
//! [`Graph::backward`] replays the tape in reverse, accumulating gradients.
//! Each learner function in Stellaris builds a fresh graph per mini-batch
//! (mirroring the per-invocation lifetime of a serverless function), so the
//! tape never outlives one gradient computation. Node values are shared into
//! backward closures via `Rc`, so recording an op never copies tensor data.
//!
//! # Gradient arena
//!
//! Backward closures do not return freshly allocated gradients; they
//! *accumulate* into per-node buffers owned by a [`GradSink`] (axpy-style
//! `+=`). The buffers live in a thread-local arena that is recycled across
//! `Graph` lifetimes, so once warm, a PPO epoch performs O(1) heap
//! allocations per backward step instead of O(nodes). The allocation
//! discipline is enforced by lint rule L6 (`grad-alloc-discipline`): no
//! `.clone()` inside a backward closure without a `lint:allow(L6)`
//! justification. [`Graph::backward_cloning`] retains the historical
//! allocate-per-contribution strategy as a differential-test reference and
//! benchmark baseline; both paths run the same closures and produce
//! identical gradients (see DESIGN.md §11 for the exactness argument).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use stellaris_telemetry as telemetry;

use crate::conv::{col2im, im2col, Conv2dSpec};
use crate::gemm::{self, FusedAct, MatRef};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// The node index inside its graph.
    #[inline]
    pub fn id(self) -> usize {
        self.0
    }
}

/// Gradient callback: receives the node's upstream gradient and accumulates
/// contributions for its parents into the sink.
type BackwardFn = Box<dyn Fn(&Tensor, &mut GradSink)>;

struct Node {
    value: Rc<Tensor>,
    backward: Option<BackwardFn>,
}

/// Reusable backward workspace: one gradient buffer per node plus a flat
/// scratch vector for ops that need a temporary (fused dense, conv2d).
#[derive(Default)]
struct GradArena {
    bufs: Vec<Tensor>,
    live: Vec<bool>,
    scratch: Vec<f32>,
}

thread_local! {
    /// Arena pool shared by every `Graph` on this thread. `backward` pops an
    /// arena (or creates one cold) and returns it when done, so consecutive
    /// graphs — e.g. the minibatch loop of a PPO epoch — reuse the same
    /// gradient buffers. Nested backward calls (gradient checking) simply
    /// grow the pool to the maximum concurrent depth.
    static ARENA_POOL: RefCell<Vec<GradArena>> = const { RefCell::new(Vec::new()) };
}

/// Accumulation target handed to backward closures.
///
/// [`GradSink::with`] hands the closure a zero-initialised (on first touch)
/// gradient buffer for a parent node to accumulate into. In arena mode the
/// buffer is the node's recycled arena slot; in cloning mode (the
/// [`Graph::backward_cloning`] reference path) a fresh tensor is allocated
/// per contribution and merged, reproducing the historical allocation
/// behaviour exactly.
pub struct GradSink<'a> {
    bufs: &'a mut [Tensor],
    live: &'a mut [bool],
    nodes: &'a [Node],
    scratch: &'a mut Vec<f32>,
    cloning: bool,
}

impl GradSink<'_> {
    /// Accumulates into the gradient buffer of `parent`. The closure sees a
    /// buffer shaped like the parent's value; on the parent's first
    /// contribution it is all zeros, afterwards it holds the running sum, so
    /// closures must only ever `+=` into it.
    pub fn with(&mut self, parent: Var, f: impl FnOnce(&mut Tensor)) {
        let pid = parent.0;
        // The tape is append-only, so parents always precede their children;
        // the slice handed to us ends right before the current node.
        assert!(
            pid < self.bufs.len(),
            "backward contribution targets a non-parent node"
        );
        let shape = self.nodes[pid].value.shape();
        if self.cloning {
            let mut tmp = Tensor::zeros(shape);
            f(&mut tmp);
            if self.live[pid] {
                self.bufs[pid].add_assign(&tmp);
            } else {
                self.bufs[pid] = tmp;
                self.live[pid] = true;
            }
        } else {
            if !self.live[pid] {
                self.bufs[pid].reuse_as_zeros(shape);
                self.live[pid] = true;
            }
            f(&mut self.bufs[pid]);
        }
    }

    /// Adds `g` verbatim to the parent's gradient (the identity-Jacobian
    /// case: add, broadcast pass-through, ...).
    pub fn add(&mut self, parent: Var, g: &Tensor) {
        self.with(parent, |d| d.add_assign(g));
    }

    /// Borrows the arena's flat scratch vector (empty or holding garbage
    /// from a previous op; callers must clear/resize). Return it with
    /// [`GradSink::restore_scratch`] so the capacity is recycled.
    pub fn take_scratch(&mut self) -> Vec<f32> {
        std::mem::take(self.scratch)
    }

    /// Returns the scratch vector taken with [`GradSink::take_scratch`].
    pub fn restore_scratch(&mut self, scratch: Vec<f32>) {
        *self.scratch = scratch;
    }
}

/// A single-use autodiff tape.
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
    /// Telemetry timestamp of tape creation. The forward pass *is* the
    /// tape's lifetime up to `backward`, so the first `backward` call emits
    /// a retroactive `nn.forward` span covering `[born_us, now]`.
    born_us: u64,
    forward_emitted: Cell<bool>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::with_capacity(64)),
            born_us: telemetry::now_us(),
            forward_emitted: Cell::new(false),
        }
    }

    /// Clears the tape for reuse, keeping the node vector's capacity. The
    /// telemetry forward-span clock restarts, as if freshly constructed.
    pub fn reset(&mut self) {
        // truncate(0) over clear(): identical for Vec, avoids a name-based
        // false edge to locking `clear` methods in stellaris-analyze.
        self.nodes.get_mut().truncate(0);
        self.born_us = telemetry::now_us();
        self.forward_emitted.set(false);
    }

    fn push(&self, value: Tensor, backward: Option<BackwardFn>) -> Var {
        self.push_rc(Rc::new(value), backward)
    }

    fn push_rc(&self, value: Rc<Tensor>, backward: Option<BackwardFn>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, backward });
        Var(nodes.len() - 1)
    }

    /// Shared handle to a node's value (cheap; no data copy).
    fn rc(&self, v: Var) -> Rc<Tensor> {
        Rc::clone(&self.nodes.borrow()[v.0].value)
    }

    /// Inserts a leaf node (input or parameter). Gradients accumulate here
    /// but do not propagate further.
    pub fn input(&self, value: Tensor) -> Var {
        self.push(value, None)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Clones the current value of a node.
    pub fn value(&self, v: Var) -> Tensor {
        (*self.nodes.borrow()[v.0].value).clone()
    }

    /// Shape of a node's value.
    pub fn shape_of(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0].value.shape().to_vec()
    }

    /// Cuts the tape: returns a new leaf sharing the same value so no
    /// gradient flows into `v`'s subgraph.
    pub fn detach(&self, v: Var) -> Var {
        let value = self.rc(v);
        self.push_rc(value, None)
    }

    // ----- elementwise binary ops ------------------------------------------------

    /// Elementwise addition of same-shaped tensors.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let out = self.rc(a).add(&self.rc(b));
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.add(a, g);
                sink.add(b, g);
            })),
        )
    }

    /// Elementwise subtraction.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let out = self.rc(a).sub(&self.rc(b));
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.add(a, g);
                sink.with(b, |d| d.add_assign_map(g, |x| -x));
            })),
        )
    }

    /// Elementwise multiplication.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.rc(a), self.rc(b));
        let out = va.mul(&vb);
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| d.add_assign_zip(g, &vb, |gv, y| gv * y));
                sink.with(b, |d| d.add_assign_zip(g, &va, |gv, x| gv * x));
            })),
        )
    }

    /// Elementwise division.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.rc(a), self.rc(b));
        let out = va.zip_map(&vb, |x, y| x / y);
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| d.add_assign_zip(g, &vb, |gv, y| gv / y));
                sink.with(b, |d| {
                    d.add_assign_zip3(g, &va, &vb, |gv, x, y| {
                        let gx = gv * x;
                        -gx / (y * y)
                    })
                });
            })),
        )
    }

    /// Elementwise minimum; gradient routes to the smaller operand (ties to `a`).
    pub fn minimum(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.rc(a), self.rc(b));
        let out = va.zip_map(&vb, f32::min);
        let mask = va.zip_map(&vb, |x, y| if x <= y { 1.0 } else { 0.0 });
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| d.add_assign_zip(g, &mask, |gv, m| gv * m));
                sink.with(b, |d| d.add_assign_zip(g, &mask, |gv, m| gv * (1.0 - m)));
            })),
        )
    }

    /// Elementwise maximum; gradient routes to the larger operand (ties to `a`).
    pub fn maximum(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.rc(a), self.rc(b));
        let out = va.zip_map(&vb, f32::max);
        let mask = va.zip_map(&vb, |x, y| if x >= y { 1.0 } else { 0.0 });
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| d.add_assign_zip(g, &mask, |gv, m| gv * m));
                sink.with(b, |d| d.add_assign_zip(g, &mask, |gv, m| gv * (1.0 - m)));
            })),
        )
    }

    // ----- scalar / rowwise broadcasts -------------------------------------------

    /// Multiplies every element by a constant.
    pub fn scale(&self, a: Var, c: f32) -> Var {
        let out = self.rc(a).scaled(c);
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| d.add_assign_map(g, |x| x * c));
            })),
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, a: Var, c: f32) -> Var {
        let out = self.rc(a).map(|x| x + c);
        self.push(out, Some(Box::new(move |g, sink| sink.add(a, g))))
    }

    /// Adds a scalar-valued node (`[1]`) to every element of `a`, scaled by
    /// `coeff`: `out = a + coeff * s`.
    pub fn add_scalar_var(&self, a: Var, s: Var, coeff: f32) -> Var {
        let sval = self.rc(s);
        assert_eq!(sval.numel(), 1, "add_scalar_var expects scalar rhs");
        let out = self.rc(a).map(|x| x + coeff * sval.data()[0]);
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.add(a, g);
                sink.with(s, |d| d.data_mut()[0] += coeff * g.sum());
            })),
        )
    }

    /// Adds a `[n]` bias row to every row of a `[m,n]` matrix.
    pub fn add_bias(&self, a: Var, bias: Var) -> Var {
        let vb = self.rc(bias);
        let n = vb.numel();
        let out = self.rc(a).add_row_broadcast(&vb);
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.add(a, g);
                sink.with(bias, |d| {
                    let db = d.data_mut();
                    for row in g.data().chunks(n) {
                        for (acc, &gv) in db.iter_mut().zip(row.iter()) {
                            *acc += gv;
                        }
                    }
                });
            })),
        )
    }

    /// Subtracts a `[n]` row from every row of a `[m,n]` matrix.
    pub fn sub_row(&self, a: Var, row: Var) -> Var {
        let neg = self.scale(row, -1.0);
        self.add_bias(a, neg)
    }

    /// Multiplies every row of a `[m,n]` matrix elementwise by a `[n]` row.
    pub fn mul_row(&self, a: Var, row: Var) -> Var {
        let va = self.rc(a);
        let vr = self.rc(row);
        assert_eq!(va.shape().len(), 2, "mul_row lhs must be 2-D");
        let n = va.shape()[1];
        assert_eq!(vr.numel(), n, "mul_row row length mismatch");
        let mut out = (*va).clone();
        for r in out.data_mut().chunks_mut(n) {
            for (x, &w) in r.iter_mut().zip(vr.data().iter()) {
                *x *= w;
            }
        }
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| {
                    for (drow, grow) in d.data_mut().chunks_mut(n).zip(g.data().chunks(n)) {
                        for ((x, &gv), &w) in drow.iter_mut().zip(grow.iter()).zip(vr.data().iter())
                        {
                            *x += gv * w;
                        }
                    }
                });
                sink.with(row, |d| {
                    let dr = d.data_mut();
                    for (grow, arow) in g.data().chunks(n).zip(va.data().chunks(n)) {
                        for j in 0..n {
                            dr[j] += grow[j] * arow[j];
                        }
                    }
                });
            })),
        )
    }

    // ----- elementwise unary ops --------------------------------------------------

    fn unary(
        &self,
        a: Var,
        f: impl Fn(f32) -> f32,
        dfdx_from_out: impl Fn(f32, f32) -> f32 + 'static,
    ) -> Var {
        let va = self.rc(a);
        let out = Rc::new(va.map(f));
        let out_cap = Rc::clone(&out);
        self.push_rc(
            out,
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| {
                    d.add_assign_zip3(g, &va, &out_cap, |gv, x, y| gv * dfdx_from_out(x, y))
                });
            })),
        )
    }

    /// Negation.
    pub fn neg(&self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.unary(a, f32::tanh, |_, y| 1.0 - y * y)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.unary(a, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Exponential.
    pub fn exp(&self, a: Var) -> Var {
        self.unary(a, f32::exp, |_, y| y)
    }

    /// Natural logarithm (inputs are assumed positive).
    pub fn log(&self, a: Var) -> Var {
        self.unary(a, f32::ln, |x, _| 1.0 / x)
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        self.unary(a, |x| x * x, |x, _| 2.0 * x)
    }

    /// Elementwise square root (inputs assumed non-negative).
    pub fn sqrt(&self, a: Var) -> Var {
        self.unary(a, f32::sqrt, |_, y| 0.5 / y.max(1e-12))
    }

    /// Clamps values to `[lo, hi]`; gradient is gated to the interior.
    pub fn clamp(&self, a: Var, lo: f32, hi: f32) -> Var {
        self.unary(
            a,
            move |x| x.clamp(lo, hi),
            move |x, _| if x > lo && x < hi { 1.0 } else { 0.0 },
        )
    }

    /// Elementwise `min(a, c)` against a constant; gradient flows where `a < c`.
    pub fn min_scalar(&self, a: Var, c: f32) -> Var {
        self.unary(
            a,
            move |x| x.min(c),
            move |x, _| if x <= c { 1.0 } else { 0.0 },
        )
    }

    // ----- reductions ---------------------------------------------------------------

    /// Sum of all elements, producing a `[1]` scalar node.
    pub fn sum_all(&self, a: Var) -> Var {
        let out = Tensor::scalar(self.rc(a).sum());
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                let g0 = g.data()[0];
                sink.with(a, |d| {
                    for x in d.data_mut() {
                        *x += g0;
                    }
                });
            })),
        )
    }

    /// Mean of all elements, producing a `[1]` scalar node.
    pub fn mean_all(&self, a: Var) -> Var {
        let n = self.rc(a).numel().max(1);
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n as f32)
    }

    /// Row sums of a `[m,n]` matrix, producing a `[m]` vector node.
    pub fn sum_rows(&self, a: Var) -> Var {
        let va = self.rc(a);
        assert_eq!(va.shape().len(), 2, "sum_rows requires a 2-D tensor");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        let data: Vec<f32> = va.data().chunks(n).map(|r| r.iter().sum()).collect();
        self.push(
            Tensor::from_vec(data, &[m]),
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| {
                    for (i, chunk) in d.data_mut().chunks_mut(n).enumerate() {
                        let gi = g.data()[i];
                        for x in chunk {
                            *x += gi;
                        }
                    }
                });
            })),
        )
    }

    /// Weighted mean `sum(a * w) / sum(w)` against a constant weight vector.
    pub fn weighted_mean(&self, a: Var, weights: &Tensor) -> Var {
        let w = self.input(weights.clone());
        let prod = self.mul(a, w);
        let s = self.sum_all(prod);
        self.scale(s, 1.0 / weights.sum().max(1e-12))
    }

    // ----- linear algebra -------------------------------------------------------------

    /// Matrix product of 2-D nodes.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.rc(a), self.rc(b));
        let out = va.matmul(&vb);
        let (m, k) = (va.shape()[0], va.shape()[1]);
        let n = vb.shape()[1];
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                // da += g @ bᵀ, db += aᵀ @ g — transposes are stride views,
                // accumulation happens inside the GEMM (no temporaries).
                sink.with(a, |d| {
                    gemm::gemm(
                        MatRef::new(g.data(), m, n),
                        MatRef::new(vb.data(), k, n).t(),
                        d.data_mut(),
                        true,
                    )
                });
                sink.with(b, |d| {
                    gemm::gemm(
                        MatRef::new(va.data(), m, k).t(),
                        MatRef::new(g.data(), m, n),
                        d.data_mut(),
                        true,
                    )
                });
            })),
        )
    }

    /// Fused dense layer: `act(x @ w + bias)` recorded as a single node.
    ///
    /// Forward runs [`Tensor::matmul_bias_act`]; backward modulates the
    /// upstream gradient by the activation derivative (recovered from the
    /// node's own output) into the arena scratch, then feeds the three
    /// parent gradients with accumulating GEMMs and a column sum. Gradients
    /// are bit-identical to the unfused `matmul`+`add_bias`+activation
    /// chain.
    pub fn dense(&self, x: Var, w: Var, bias: Var, act: FusedAct) -> Var {
        let (vx, vw, vb) = (self.rc(x), self.rc(w), self.rc(bias));
        let out = Rc::new(vx.matmul_bias_act(&vw, &vb, act));
        let (m, k) = (vx.shape()[0], vx.shape()[1]);
        let n = vw.shape()[1];
        let out_cap = Rc::clone(&out);
        self.push_rc(
            out,
            Some(Box::new(move |g, sink| {
                // gmod = g ⊙ act'(y), with act' read off the stored output.
                let mut gmod = sink.take_scratch();
                gmod.truncate(0);
                gmod.reserve(m * n);
                gmod.extend(
                    g.data()
                        .iter()
                        .zip(out_cap.data().iter())
                        .map(|(&gv, &y)| gv * act.deriv_from_output(y)),
                );
                let gm = MatRef::new(&gmod, m, n);
                sink.with(x, |d| {
                    gemm::gemm(gm, MatRef::new(vw.data(), k, n).t(), d.data_mut(), true)
                });
                sink.with(w, |d| {
                    gemm::gemm(MatRef::new(vx.data(), m, k).t(), gm, d.data_mut(), true)
                });
                sink.with(bias, |d| {
                    let db = d.data_mut();
                    for row in gmod.chunks(n) {
                        for (acc, &gv) in db.iter_mut().zip(row.iter()) {
                            *acc += gv;
                        }
                    }
                });
                sink.restore_scratch(gmod);
            })),
        )
    }

    /// Reshape (no data movement in the forward value; gradient is reshaped back).
    pub fn reshape(&self, a: Var, shape: &[usize]) -> Var {
        let out = self.value(a).reshaped(shape);
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                // Same flat buffer, different shape: accumulate flat.
                sink.with(a, |d| d.add_assign_flat(g));
            })),
        )
    }

    // ----- softmax family ----------------------------------------------------------

    /// Row-wise log-softmax of a `[m,n]` logits matrix.
    pub fn log_softmax(&self, logits: Var) -> Var {
        let v = self.rc(logits);
        assert_eq!(v.shape().len(), 2, "log_softmax requires a 2-D tensor");
        let (m, n) = (v.shape()[0], v.shape()[1]);
        let mut out = vec![0.0f32; m * n];
        for (row_in, row_out) in v.data().chunks(n).zip(out.chunks_mut(n)) {
            let mx = row_in.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = row_in.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln() + mx;
            for (o, &x) in row_out.iter_mut().zip(row_in.iter()) {
                *o = x - lse;
            }
        }
        let out = Rc::new(Tensor::from_vec(out, &[m, n]));
        let out_cap = Rc::clone(&out);
        self.push_rc(
            out,
            Some(Box::new(move |g, sink| {
                // d logits = g - softmax * rowsum(g)
                sink.with(logits, |d| {
                    for ((drow, grow), orow) in d
                        .data_mut()
                        .chunks_mut(n)
                        .zip(g.data().chunks(n))
                        .zip(out_cap.data().chunks(n))
                    {
                        let gsum: f32 = grow.iter().sum();
                        for ((dv, &gv), &lo) in drow.iter_mut().zip(grow.iter()).zip(orow.iter()) {
                            *dv += gv - lo.exp() * gsum;
                        }
                    }
                });
            })),
        )
    }

    /// Gathers one column per row: `out[i] = a[i, idx[i]]`, producing `[m]`.
    pub fn gather_cols(&self, a: Var, idx: &[usize]) -> Var {
        let va = self.rc(a);
        assert_eq!(va.shape().len(), 2, "gather_cols requires a 2-D tensor");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        assert_eq!(idx.len(), m, "gather_cols index length mismatch");
        let data: Vec<f32> = idx.iter().enumerate().map(|(i, &j)| va.at2(i, j)).collect();
        let idx = idx.to_vec();
        self.push(
            Tensor::from_vec(data, &[m]),
            Some(Box::new(move |g, sink| {
                sink.with(a, |d| {
                    let dm = d.data_mut();
                    for (i, &j) in idx.iter().enumerate() {
                        dm[i * n + j] += g.data()[i];
                    }
                });
            })),
        )
    }

    // ----- convolution ---------------------------------------------------------------

    /// 2-D convolution: input `[b,c,h,w]`, weight `[o,c,kh,kw]`, bias `[o]`.
    pub fn conv2d(&self, input: Var, weight: Var, bias: Var, stride: usize) -> Var {
        let x = self.rc(input);
        let w = self.rc(weight);
        let bv = self.rc(bias);
        let spec = Conv2dSpec::infer(x.shape(), w.shape(), stride);
        let cols = im2col(&x, &spec); // [b] of [ckk, oh*ow]
        let w2 = w.reshape(&[spec.out_c, spec.ckk()]);
        let (b, oc, oh, ow) = (spec.batch, spec.out_c, spec.out_h, spec.out_w);
        let mut out = Vec::with_capacity(b * oc * oh * ow);
        for col in &cols {
            let o = w2.matmul(col); // [oc, oh*ow]
            for (ch, chunk) in o.data().chunks(oh * ow).enumerate() {
                let beta = bv.data()[ch];
                out.extend(chunk.iter().map(|&v| v + beta));
            }
        }
        let out = Tensor::from_vec(out, &[b, oc, oh, ow]);
        self.push(
            out,
            Some(Box::new(move |g, sink| {
                let hw = oh * ow;
                let ckk = spec.ckk();
                // dw: the [o,c,kh,kw] buffer is flat-identical to [oc,ckk],
                // so the per-image GEMMs accumulate straight into it.
                sink.with(weight, |d| {
                    for (bi, col) in cols.iter().enumerate() {
                        let gslice = &g.data()[bi * oc * hw..(bi + 1) * oc * hw];
                        gemm::gemm(
                            MatRef::new(gslice, oc, hw),
                            MatRef::new(col.data(), ckk, hw).t(),
                            d.data_mut(),
                            true,
                        );
                    }
                });
                sink.with(bias, |d| {
                    let db = d.data_mut();
                    for bi in 0..b {
                        let gslice = &g.data()[bi * oc * hw..(bi + 1) * oc * hw];
                        for (ch, chunk) in gslice.chunks(hw).enumerate() {
                            db[ch] += chunk.iter().sum::<f32>();
                        }
                    }
                });
                // dx: dcol = w2ᵀ @ g_i into the arena scratch, scattered
                // back through col2im. w2ᵀ is a stride view.
                let mut dcol = sink.take_scratch();
                dcol.truncate(0);
                dcol.resize(ckk * hw, 0.0);
                sink.with(input, |d| {
                    for bi in 0..b {
                        let gslice = &g.data()[bi * oc * hw..(bi + 1) * oc * hw];
                        gemm::gemm(
                            MatRef::new(w2.data(), oc, ckk).t(),
                            MatRef::new(gslice, oc, hw),
                            &mut dcol,
                            false,
                        );
                        col2im(&dcol, &spec, bi, d);
                    }
                });
                sink.restore_scratch(dcol);
            })),
        )
    }

    // ----- backward pass ------------------------------------------------------------

    /// Runs reverse-mode accumulation from the scalar node `loss` and returns
    /// the gradients of the requested variables (zeros where disconnected).
    ///
    /// Gradients accumulate in a recycled thread-local arena, so a warm call
    /// performs O(1) heap allocations (the returned `wrt` clones) regardless
    /// of tape size.
    ///
    /// The first call emits a retroactive `nn.forward` span (tape creation
    /// to now — the window in which all forward ops were recorded) and every
    /// call runs under an `nn.backward` span; tape sizes feed the
    /// `stellaris_nn_backward_nodes` histogram.
    pub fn backward(&self, loss: Var, wrt: &[Var]) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(wrt.len());
        self.backward_into(loss, wrt, &mut out);
        out
    }

    /// Like [`Graph::backward`] but writes the gradients into `out`, reusing
    /// its tensors' storage. With warm buffers (same parameter layout as the
    /// previous step) a call performs zero gradient-related heap allocations;
    /// this is the variant the hotpath bench counts.
    pub fn backward_into(&self, loss: Var, wrt: &[Var], out: &mut Vec<Tensor>) {
        ARENA_POOL.with(|pool| {
            let mut arena = pool.borrow_mut().pop().unwrap_or_default();
            self.backward_impl(loss, wrt, &mut arena, false, out);
            pool.borrow_mut().push(arena);
        });
    }

    /// Reference backward pass with the historical allocation strategy: a
    /// fresh tensor per gradient contribution, merged with `+=`. Produces
    /// gradients identical to [`Graph::backward`] (same closures, same
    /// accumulation order); kept as the differential-test oracle and as the
    /// "before" baseline for the hotpath benchmark.
    pub fn backward_cloning(&self, loss: Var, wrt: &[Var]) -> Vec<Tensor> {
        let mut arena = GradArena::default();
        let mut out = Vec::with_capacity(wrt.len());
        self.backward_impl(loss, wrt, &mut arena, true, &mut out);
        out
    }

    fn backward_impl(
        &self,
        loss: Var,
        wrt: &[Var],
        arena: &mut GradArena,
        cloning: bool,
        out: &mut Vec<Tensor>,
    ) {
        let nodes = self.nodes.borrow();
        if !self.forward_emitted.replace(true) {
            let fwd_end = telemetry::now_us();
            telemetry::span_closed(
                "nn.forward",
                self.born_us,
                fwd_end.saturating_sub(self.born_us),
                vec![("nodes", nodes.len().into())],
            );
        }
        let _span = telemetry::span_with("nn.backward", vec![("nodes", nodes.len().into())]);
        telemetry::global()
            .histogram("stellaris_nn_backward_nodes")
            .record(u64::try_from(nodes.len()).unwrap_or(u64::MAX));
        assert_eq!(
            nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss node"
        );
        let n = nodes.len();
        if arena.bufs.len() < n {
            arena.bufs.resize_with(n, || Tensor::zeros(&[0]));
        }
        arena.live.truncate(0);
        arena.live.resize(n, false);
        {
            let seed = &mut arena.bufs[loss.0];
            seed.reuse_as_zeros(nodes[loss.0].value.shape());
            seed.data_mut().fill(1.0);
            arena.live[loss.0] = true;
        }
        for i in (0..=loss.0).rev() {
            if !arena.live[i] {
                continue;
            }
            let Some(back) = &nodes[i].backward else {
                continue;
            };
            // Parents strictly precede node `i` on the tape, so the buffers
            // below `i` (writable by the sink) never alias `i`'s gradient.
            let (bufs_head, bufs_tail) = arena.bufs.split_at_mut(i);
            let (live_head, _) = arena.live.split_at_mut(i);
            let mut sink = GradSink {
                bufs: bufs_head,
                live: live_head,
                nodes: &nodes[..i],
                scratch: &mut arena.scratch,
                cloning,
            };
            back(&bufs_tail[0], &mut sink);
        }
        out.resize_with(wrt.len(), || Tensor::zeros(&[0]));
        for (slot, v) in out.iter_mut().zip(wrt) {
            if arena.live[v.0] {
                slot.copy_from(&arena.bufs[v.0]);
            } else {
                slot.reuse_as_zeros(nodes[v.0].value.shape());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Central-difference gradient check for a scalar function of one tensor.
    fn grad_check(build: impl Fn(&Graph, Var) -> Var, x0: &Tensor, tol: f32) {
        let g = Graph::new();
        let x = g.input(x0.clone());
        let loss = build(&g, x);
        let analytic = g.backward(loss, &[x]).remove(0);

        let eps = 1e-3f32;
        for i in 0..x0.numel() {
            let mut lo = x0.clone();
            lo.data_mut()[i] -= eps;
            let mut hi = x0.clone();
            hi.data_mut()[i] += eps;
            let gl = Graph::new();
            let fl = gl.value(build(&gl, gl.input(lo)));
            let gh = Graph::new();
            let fh = gh.value(build(&gh, gh.input(hi)));
            let numeric = (fh.data()[0] - fl.data()[0]) / (2.0 * eps);
            let got = analytic.data()[i];
            assert!(
                (got - numeric).abs() < tol * (1.0 + numeric.abs()),
                "elem {i}: analytic {got} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_tanh_square_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x0 = Tensor::randn(&[2, 3], 1.0, &mut rng);
        grad_check(
            |g, x| {
                let t = g.tanh(x);
                let s = g.square(t);
                g.mean_all(s)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x0 = Tensor::randn(&[3, 4], 0.5, &mut rng);
        let w = Tensor::randn(&[4, 2], 0.5, &mut rng);
        grad_check(
            move |g, x| {
                let wv = g.input(w.clone());
                let y = g.matmul(x, wv);
                g.sum_all(y)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_weight_side() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::randn(&[3, 4], 0.5, &mut rng);
        let w0 = Tensor::randn(&[4, 2], 0.5, &mut rng);
        grad_check(
            move |g, w| {
                let av = g.input(a.clone());
                let y = g.matmul(av, w);
                let sq = g.square(y);
                g.mean_all(sq)
            },
            &w0,
            1e-2,
        );
    }

    #[test]
    fn grad_log_softmax_gather() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let x0 = Tensor::randn(&[4, 5], 1.0, &mut rng);
        grad_check(
            |g, x| {
                let lsm = g.log_softmax(x);
                let picked = g.gather_cols(lsm, &[0, 2, 4, 1]);
                g.mean_all(picked)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_div_and_exp() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x0 = Tensor::rand_uniform(&[6], 0.5, 2.0, &mut rng);
        grad_check(
            |g, x| {
                let e = g.exp(x);
                let d = g.div(e, x);
                g.mean_all(d)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_minimum_maximum() {
        let x0 = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -0.2], &[4]);
        let other = Tensor::from_vec(vec![0.0, 0.0, 1.0, -1.0], &[4]);
        grad_check(
            move |g, x| {
                let o = g.input(other.clone());
                let mn = g.minimum(x, o);
                let mx = g.maximum(mn, o);
                let s = g.square(mx);
                g.sum_all(s)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_clamp_interior_only() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]));
        let c = g.clamp(x, -1.0, 1.0);
        let loss = g.sum_all(c);
        let grad = g.backward(loss, &[x]).remove(0);
        assert_eq!(grad.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn grad_bias_broadcast() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let b0 = Tensor::randn(&[3], 1.0, &mut rng);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        grad_check(
            move |g, b| {
                let av = g.input(a.clone());
                let y = g.add_bias(av, b);
                let s = g.square(y);
                g.mean_all(s)
            },
            &b0,
            1e-2,
        );
    }

    #[test]
    fn grad_mul_row() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let r0 = Tensor::randn(&[3], 1.0, &mut rng);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        grad_check(
            move |g, r| {
                let av = g.input(a.clone());
                let y = g.mul_row(av, r);
                g.sum_all(y)
            },
            &r0,
            1e-2,
        );
    }

    #[test]
    fn grad_sum_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let x0 = Tensor::randn(&[3, 4], 1.0, &mut rng);
        grad_check(
            |g, x| {
                let rows = g.sum_rows(x);
                let sq = g.square(rows);
                g.mean_all(sq)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_conv2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x0 = Tensor::randn(&[2, 2, 5, 5], 0.5, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[3], 0.5, &mut rng);
        grad_check(
            move |g, x| {
                let wv = g.input(w.clone());
                let bv = g.input(b.clone());
                let y = g.conv2d(x, wv, bv, 2);
                let s = g.square(y);
                g.mean_all(s)
            },
            &x0,
            2e-2,
        );
    }

    #[test]
    fn grad_conv2d_weight_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.5, &mut rng);
        let w0 = Tensor::randn(&[2, 2, 2, 2], 0.5, &mut rng);
        grad_check(
            move |g, w| {
                let xv = g.input(x.clone());
                let bv = g.input(Tensor::zeros(&[2]));
                let y = g.conv2d(xv, w, bv, 1);
                g.mean_all(y)
            },
            &w0,
            2e-2,
        );
    }

    #[test]
    fn grad_dense_matches_unfused_chain() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let x0 = Tensor::randn(&[5, 7], 0.7, &mut rng);
        let w0 = Tensor::randn(&[7, 3], 0.7, &mut rng);
        let b0 = Tensor::randn(&[3], 0.7, &mut rng);
        for act in [FusedAct::Identity, FusedAct::Tanh, FusedAct::Relu] {
            // Fused graph.
            let gf = Graph::new();
            let (xf, wf, bf) = (
                gf.input(x0.clone()),
                gf.input(w0.clone()),
                gf.input(b0.clone()),
            );
            let yf = gf.dense(xf, wf, bf, act);
            let lf = gf.mean_all(gf.square(yf));
            let grads_f = gf.backward(lf, &[xf, wf, bf]);
            // Unfused graph.
            let gu = Graph::new();
            let (xu, wu, bu) = (
                gu.input(x0.clone()),
                gu.input(w0.clone()),
                gu.input(b0.clone()),
            );
            let mm = gu.matmul(xu, wu);
            let pre = gu.add_bias(mm, bu);
            let yu = match act {
                FusedAct::Identity => pre,
                FusedAct::Tanh => gu.tanh(pre),
                FusedAct::Relu => gu.relu(pre),
            };
            let lu = gu.mean_all(gu.square(yu));
            let grads_u = gu.backward(lu, &[xu, wu, bu]);
            assert_eq!(gf.value(yf), gu.value(yu), "forward {act:?}");
            for (f, u) in grads_f.iter().zip(grads_u.iter()) {
                assert_eq!(f, u, "gradients must match bitwise for {act:?}");
            }
        }
    }

    #[test]
    fn detach_blocks_gradient() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2.0], &[1]));
        let y = g.square(x);
        let d = g.detach(y);
        let loss = g.mul(d, x); // loss = detach(x^2) * x; d loss/dx should be x^2 only
        let grad = g.backward(loss, &[x]).remove(0);
        assert!((grad.data()[0] - 4.0).abs() < 1e-6, "{}", grad.data()[0]);
    }

    #[test]
    fn disconnected_grad_is_zero() {
        let g = Graph::new();
        let x = g.input(Tensor::ones(&[3]));
        let y = g.input(Tensor::ones(&[1]));
        let loss = g.mean_all(y);
        let grad = g.backward(loss, &[x]).remove(0);
        assert_eq!(grad, Tensor::zeros(&[3]));
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // loss = x*x + x  => dloss/dx = 2x + 1
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![3.0], &[1]));
        let xx = g.mul(x, x);
        let s = g.add(xx, x);
        let loss = g.sum_all(s);
        let grad = g.backward(loss, &[x]).remove(0);
        assert!((grad.data()[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn add_scalar_var_broadcasts_and_backprops() {
        let g = Graph::new();
        let a = g.input(Tensor::ones(&[4]));
        let s = g.input(Tensor::scalar(2.0));
        let y = g.add_scalar_var(a, s, -1.0);
        assert_eq!(g.value(y).data(), &[-1.0, -1.0, -1.0, -1.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss, &[a, s]);
        assert_eq!(grads[0], Tensor::ones(&[4]));
        assert!((grads[1].data()[0] + 4.0).abs() < 1e-6);
    }

    #[test]
    fn backward_matches_cloning_reference() {
        // One graph, both strategies: the recycled-arena path must produce
        // the same gradients as the allocate-per-contribution reference.
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&[4, 6], 1.0, &mut rng));
        let w = g.input(Tensor::randn(&[6, 3], 0.5, &mut rng));
        let b = g.input(Tensor::randn(&[3], 0.5, &mut rng));
        let mm = g.matmul(x, w);
        let h = g.add_bias(mm, b);
        let t = g.tanh(h);
        let loss = g.mean_all(g.square(t));
        let inplace = g.backward(loss, &[x, w, b]);
        let cloning = g.backward_cloning(loss, &[x, w, b]);
        assert_eq!(inplace, cloning);
    }

    #[test]
    fn arena_recycles_across_graphs() {
        // Three graphs in sequence share the thread-local arena; each must
        // still agree with the cloning reference (no stale-gradient leaks).
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        for round in 0..3 {
            let g = Graph::new();
            let dim = 3 + round; // vary shapes so buffers get reshaped
            let x = g.input(Tensor::randn(&[2, dim], 1.0, &mut rng));
            let w = g.input(Tensor::randn(&[dim, 2], 1.0, &mut rng));
            let y = g.matmul(x, w);
            let loss = g.mean_all(g.square(y));
            assert_eq!(
                g.backward(loss, &[x, w]),
                g.backward_cloning(loss, &[x, w]),
                "round {round}"
            );
        }
    }

    #[test]
    fn reset_clears_tape_for_reuse() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2.0], &[1]));
        let y = g.square(x);
        let _ = g.backward(y, &[x]);
        assert_eq!(g.len(), 2);
        g.reset();
        assert!(g.is_empty());
        let x2 = g.input(Tensor::from_vec(vec![3.0], &[1]));
        let y2 = g.square(x2);
        let grad = g.backward(y2, &[x2]).remove(0);
        assert!((grad.data()[0] - 6.0).abs() < 1e-6);
    }
}
