//! First-order optimizers: SGD (with momentum), Adam and RMSProp.
//!
//! The paper's parameter function performs the policy update with an
//! off-the-shelf optimizer (§V-C, Eq. 4 mentions "SGD, Adam, or RMSProp");
//! the staleness-modulated learning rate is applied per-gradient *before*
//! aggregation, so the optimizer itself stays standard.

use crate::tensor::Tensor;

/// A stateful first-order optimizer over a flat parameter list.
pub trait Optimizer: Send {
    /// Applies one update step through mutable references. This is the
    /// zero-copy entry point: the parameter server hands in borrows of the
    /// live policy tensors (via [`crate::ParamSet::params_mut`]) so no
    /// parameter copies are made around the update.
    fn step_refs(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]);

    /// Applies one update step in place. `grads` must align with `params`.
    fn step(&mut self, params: &mut [Tensor], grads: &[Tensor]) {
        let mut refs: Vec<&mut Tensor> = params.iter_mut().collect();
        self.step_refs(&mut refs, grads);
    }
    /// Current base learning rate (the paper's `α_0`).
    fn lr(&self) -> f32;
    /// Overrides the base learning rate.
    fn set_lr(&mut self, lr: f32);
    /// Human-readable name for logs.
    fn name(&self) -> &'static str;
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum (0 disables).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step_refs(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.momentum > 0.0 && self.velocity.is_empty() {
            self.velocity = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        for (i, (p, g)) in params.iter_mut().zip(grads.iter()).enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale_inplace(self.momentum);
                v.axpy(1.0, g);
                p.axpy(-self.lr, v);
            } else {
                p.axpy(-self.lr, g);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Adam (Kingma & Ba), the optimizer used for both PPO and IMPACT in §VIII-B.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the canonical betas (0.9, 0.999) and epsilon 1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Fully parameterised Adam.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step_refs(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
            self.v = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            for ((pd, &gd), (md, vd)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data().iter())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *md = self.beta1 * *md + (1.0 - self.beta1) * gd;
                *vd = self.beta2 * *vd + (1.0 - self.beta2) * gd * gd;
                let mhat = *md / bc1;
                let vhat = *vd / bc2;
                *pd -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// RMSProp with exponential moving average of squared gradients.
pub struct RmsProp {
    lr: f32,
    alpha: f32,
    eps: f32,
    sq: Vec<Tensor>,
}

impl RmsProp {
    /// RMSProp with decay `alpha` (typically 0.99).
    pub fn new(lr: f32, alpha: f32) -> Self {
        Self {
            lr,
            alpha,
            eps: 1e-8,
            sq: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step_refs(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.sq.is_empty() {
            self.sq = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        for ((p, g), s) in params.iter_mut().zip(grads.iter()).zip(self.sq.iter_mut()) {
            for ((pd, &gd), sd) in p
                .data_mut()
                .iter_mut()
                .zip(g.data().iter())
                .zip(s.data_mut().iter_mut())
            {
                *sd = self.alpha * *sd + (1.0 - self.alpha) * gd * gd;
                *pd -= self.lr * gd / (sd.sqrt() + self.eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }
}

/// Named optimizer choices for configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with 0.9 momentum.
    SgdMomentum,
    /// Adam (paper default).
    Adam,
    /// RMSProp.
    RmsProp,
}

impl OptimizerKind {
    /// Instantiates the optimizer with learning rate `lr`.
    pub fn build(self, lr: f32) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Sgd => Box::new(Sgd::new(lr, 0.0)),
            OptimizerKind::SgdMomentum => Box::new(Sgd::new(lr, 0.9)),
            OptimizerKind::Adam => Box::new(Adam::new(lr)),
            OptimizerKind::RmsProp => Box::new(RmsProp::new(lr, 0.99)),
        }
    }
}

/// Rescales gradients in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let total: f32 = grads.iter().map(Tensor::sq_norm).sum::<f32>().sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            g.scale_inplace(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(params: &[Tensor]) -> Vec<Tensor> {
        // f(x) = 0.5 * ||x||^2, grad = x
        params.to_vec()
    }

    fn run_to_convergence(mut opt: Box<dyn Optimizer>, steps: usize) -> f32 {
        let mut params = vec![Tensor::from_vec(vec![3.0, -2.0, 1.5], &[3])];
        for _ in 0..steps {
            let grads = quadratic_grad(&params);
            opt.step(&mut params, &grads);
        }
        params[0].norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let n = run_to_convergence(Box::new(Sgd::new(0.1, 0.0)), 200);
        assert!(n < 1e-3, "norm {n}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let n = run_to_convergence(Box::new(Sgd::new(0.05, 0.9)), 300);
        assert!(n < 1e-2, "norm {n}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let n = run_to_convergence(Box::new(Adam::new(0.05)), 500);
        assert!(n < 1e-2, "norm {n}");
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let n = run_to_convergence(Box::new(RmsProp::new(0.02, 0.99)), 800);
        assert!(n < 5e-2, "norm {n}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // Bias correction makes the very first Adam step ~= lr * sign(grad).
        let mut opt = Adam::new(0.1);
        let mut params = vec![Tensor::from_vec(vec![1.0], &[1])];
        let grads = vec![Tensor::from_vec(vec![123.0], &[1])];
        opt.step(&mut params, &grads);
        assert!((params[0].data()[0] - 0.9).abs() < 1e-3);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut grads = vec![Tensor::from_vec(vec![3.0, 4.0], &[2])];
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((grads[0].norm() - 1.0).abs() < 1e-5);

        let mut small = vec![Tensor::from_vec(vec![0.3, 0.4], &[2])];
        let pre2 = clip_grad_norm(&mut small, 1.0);
        assert!((pre2 - 0.5).abs() < 1e-6);
        assert!(
            (small[0].norm() - 0.5).abs() < 1e-6,
            "unchanged when under bound"
        );
    }

    #[test]
    fn step_refs_matches_step() {
        let grads = vec![Tensor::from_vec(vec![1.0, -2.0], &[2])];
        let mut owned = vec![Tensor::from_vec(vec![3.0, 4.0], &[2])];
        let mut borrowed = owned.clone();
        let mut opt_a = Adam::new(0.1);
        let mut opt_b = Adam::new(0.1);
        opt_a.step(&mut owned, &grads);
        let mut refs: Vec<&mut Tensor> = borrowed.iter_mut().collect();
        opt_b.step_refs(&mut refs, &grads);
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn set_lr_roundtrip() {
        let mut opt = Adam::new(0.001);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
    }

    #[test]
    fn kind_builds_named_optimizers() {
        assert_eq!(OptimizerKind::Adam.build(0.1).name(), "adam");
        assert_eq!(OptimizerKind::Sgd.build(0.1).name(), "sgd");
        assert_eq!(OptimizerKind::RmsProp.build(0.1).name(), "rmsprop");
    }
}
