//! # stellaris-nn
//!
//! A small, self-contained neural-network library backing the Stellaris
//! DRL reproduction: dense `f32` tensors over a packed, cache-blocked
//! [`gemm`] kernel, a tape-based reverse-mode autograd [`Graph`] with a
//! recycled gradient arena, the MLP/CNN architectures of the paper's
//! Table II, SGD/Adam/RMSProp optimizers, and differentiable
//! Gaussian/categorical policy distributions.
//!
//! The library substitutes for PyTorch in the original system (see
//! DESIGN.md §2): gradients are computed per mini-batch on a fresh graph,
//! matching the per-invocation lifetime of a serverless learner function.
//! The performance contract of the hot path (GEMM blocking, the gradient
//! arena, fused dense ops) is documented in DESIGN.md §11.

#![warn(missing_docs)]

pub mod conv;
pub mod dist;
pub mod gemm;
pub mod graph;
pub mod layers;
pub mod optim;
pub mod tensor;

pub use gemm::FusedAct;
pub use graph::{Graph, Var};
pub use layers::{bind_params, Activation, Cnn, ConvLayer, Linear, Mlp, ParamSet};
pub use optim::{clip_grad_norm, Adam, Optimizer, OptimizerKind, RmsProp, Sgd};
pub use tensor::{flatten_all, unflatten_all, Tensor};
