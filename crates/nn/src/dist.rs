//! Policy action distributions: diagonal Gaussian (MuJoCo) and categorical
//! (Atari).
//!
//! Two API surfaces exist on purpose. The *graph* functions build
//! differentiable log-probability / entropy / KL nodes for learner-side loss
//! construction. The *value* functions are plain `f32` math for the actor
//! side, where trajectories are sampled without any gradient bookkeeping —
//! exactly the actor/learner split of the paper's architecture.

use rand::Rng;

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

const LN_2PI: f32 = 1.837_877_1; // ln(2π)

// ---------------------------------------------------------------------------
// Graph-side (differentiable) distribution math
// ---------------------------------------------------------------------------

/// Log-probability of `actions` (`[B,D]`, constant) under a diagonal
/// Gaussian with mean node `mu` (`[B,D]`) and log-std node `log_std`
/// (`[D]`). Returns a `[B]` node.
pub fn gaussian_log_prob(g: &Graph, mu: Var, log_std: Var, actions: &Tensor) -> Var {
    let dims = actions.shape()[1];
    let a = g.input(actions.clone());
    let diff = g.sub(a, mu);
    let dsq = g.square(diff);
    let inv_var = g.exp(g.scale(log_std, -2.0));
    let weighted = g.mul_row(dsq, inv_var);
    let maha = g.sum_rows(weighted);
    let half = g.scale(maha, -0.5);
    let ls_sum = g.sum_all(log_std);
    let lp = g.add_scalar_var(half, ls_sum, -1.0);
    g.add_scalar(lp, -0.5 * dims as f32 * LN_2PI)
}

/// Mean entropy (`[1]` node) of a diagonal Gaussian with log-std node of
/// dimension `dims`. Entropy is independent of the mean.
pub fn gaussian_entropy(g: &Graph, log_std: Var, dims: usize) -> Var {
    let s = g.sum_all(log_std);
    g.add_scalar(s, 0.5 * dims as f32 * (1.0 + LN_2PI))
}

/// Mean KL(old ‖ new) over a batch for diagonal Gaussians; `mu_old`
/// (`[B,D]`) and `ls_old` (`[D]`) are constants (the behaviour policy at
/// sampling time), `mu_new`/`ls_new` are graph nodes.
pub fn gaussian_kl_mean(
    g: &Graph,
    mu_old: &Tensor,
    ls_old: &Tensor,
    mu_new: Var,
    ls_new: Var,
) -> Var {
    let dims = mu_old.shape()[1];
    let old = g.input(mu_old.clone());
    let diff = g.sub(old, mu_new);
    let dsq = g.square(diff);
    let var_old_row = g.input(ls_old.map(|x| (2.0 * x).exp()));
    let numer = g.add_bias(dsq, var_old_row); // σ_old² + (μ_old-μ_new)²
    let half_inv_var_new = g.scale(g.exp(g.scale(ls_new, -2.0)), 0.5);
    let quad = g.mul_row(numer, half_inv_var_new);
    let per_sample = g.sum_rows(quad);
    let mean_quad = g.mean_all(per_sample);
    let with_new_ls = g.add_scalar_var(mean_quad, g.sum_all(ls_new), 1.0);
    g.add_scalar(with_new_ls, -ls_old.sum() - 0.5 * dims as f32)
}

/// Log-probability of discrete `actions` under `logits` (`[B,K]` node).
/// Returns a `[B]` node.
pub fn categorical_log_prob(g: &Graph, logits: Var, actions: &[usize]) -> Var {
    let lsm = g.log_softmax(logits);
    g.gather_cols(lsm, actions)
}

/// Mean entropy (`[1]` node) of categorical distributions given `logits`.
pub fn categorical_entropy_mean(g: &Graph, logits: Var) -> Var {
    let lsm = g.log_softmax(logits);
    let p = g.exp(lsm);
    let plogp = g.mul(p, lsm);
    let rows = g.sum_rows(plogp);
    g.scale(g.mean_all(rows), -1.0)
}

/// Mean KL(old ‖ new) over a batch of categorical distributions.
/// `old_logits` is constant; `new_logits` is a graph node.
pub fn categorical_kl_mean(g: &Graph, old_logits: &Tensor, new_logits: Var) -> Var {
    let (b, k) = (old_logits.shape()[0], old_logits.shape()[1]);
    let mut p_old = vec![0.0f32; b * k];
    let mut const_term = 0.0f64;
    for (row, dst) in old_logits.data().chunks(k).zip(p_old.chunks_mut(k)) {
        let lp = log_softmax_1d(row);
        for ((d, &l), _) in dst.iter_mut().zip(lp.iter()).zip(row.iter()) {
            *d = l.exp();
        }
        const_term += lp.iter().map(|&l| (l.exp() * l) as f64).sum::<f64>();
    }
    let const_mean = (const_term / b as f64) as f32;
    let pc = g.input(Tensor::from_vec(p_old, &[b, k]));
    let lsm_new = g.log_softmax(new_logits);
    let cross = g.sum_rows(g.mul(pc, lsm_new));
    let neg_cross_mean = g.scale(g.mean_all(cross), -1.0);
    g.add_scalar(neg_cross_mean, const_mean)
}

// ---------------------------------------------------------------------------
// Plain-value (actor-side) distribution math
// ---------------------------------------------------------------------------

/// Numerically stable log-softmax of one logits row.
pub fn log_softmax_1d(logits: &[f32]) -> Vec<f32> {
    let mx = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let lse = logits.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln() + mx;
    logits.iter().map(|&x| x - lse).collect()
}

/// Samples a categorical action from logits; returns `(action, log_prob)`.
pub fn sample_categorical<R: Rng + ?Sized>(logits: &[f32], rng: &mut R) -> (usize, f32) {
    let lp = log_softmax_1d(logits);
    let u: f32 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0f32;
    for (i, &l) in lp.iter().enumerate() {
        acc += l.exp();
        if u < acc {
            return (i, lp[i]);
        }
    }
    let last = lp.len() - 1;
    (last, lp[last])
}

/// Greedy (argmax) categorical action; returns `(action, log_prob)`.
pub fn argmax_categorical(logits: &[f32]) -> (usize, f32) {
    let lp = log_softmax_1d(logits);
    let (i, _) =
        logits
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            });
    (i, lp[i])
}

/// Log-probability of a discrete action under logits.
pub fn categorical_logp_value(logits: &[f32], action: usize) -> f32 {
    log_softmax_1d(logits)[action]
}

/// KL(old ‖ new) between two categorical distributions given their logits.
pub fn categorical_kl_value(old_logits: &[f32], new_logits: &[f32]) -> f32 {
    let lo = log_softmax_1d(old_logits);
    let ln = log_softmax_1d(new_logits);
    lo.iter()
        .zip(ln.iter())
        .map(|(&a, &b)| a.exp() * (a - b))
        .sum()
}

/// Samples from a diagonal Gaussian; returns `(action, log_prob)`.
pub fn sample_gaussian<R: Rng + ?Sized>(
    mu: &[f32],
    log_std: &[f32],
    rng: &mut R,
) -> (Vec<f32>, f32) {
    assert_eq!(mu.len(), log_std.len(), "mu/log_std dim mismatch");
    let mut action = Vec::with_capacity(mu.len());
    for (&m, &ls) in mu.iter().zip(log_std.iter()) {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        action.push(m + z * ls.exp());
    }
    let lp = gaussian_logp_value(mu, log_std, &action);
    (action, lp)
}

/// Log-probability of `action` under a diagonal Gaussian.
pub fn gaussian_logp_value(mu: &[f32], log_std: &[f32], action: &[f32]) -> f32 {
    let mut lp = -0.5 * mu.len() as f32 * LN_2PI;
    for ((&m, &ls), &a) in mu.iter().zip(log_std.iter()).zip(action.iter()) {
        let z = (a - m) / ls.exp();
        lp += -0.5 * z * z - ls;
    }
    lp
}

/// KL(old ‖ new) between two diagonal Gaussians (single sample row).
pub fn gaussian_kl_value(mu_old: &[f32], ls_old: &[f32], mu_new: &[f32], ls_new: &[f32]) -> f32 {
    let mut kl = 0.0f32;
    for i in 0..mu_old.len() {
        let vo = (2.0 * ls_old[i]).exp();
        let vn = (2.0 * ls_new[i]).exp();
        let d = mu_old[i] - mu_new[i];
        kl += ls_new[i] - ls_old[i] + (vo + d * d) / (2.0 * vn) - 0.5;
    }
    kl
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn graph_gaussian_logp_matches_value_fn() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mu = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let ls = Tensor::randn(&[3], 0.3, &mut rng);
        let actions = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let g = Graph::new();
        let muv = g.input(mu.clone());
        let lsv = g.input(ls.clone());
        let lp = gaussian_log_prob(&g, muv, lsv, &actions);
        let got = g.value(lp);
        for i in 0..4 {
            let want = gaussian_logp_value(mu.row(i).data(), ls.data(), actions.row(i).data());
            assert!(
                (got.data()[i] - want).abs() < 1e-4,
                "{} vs {want}",
                got.data()[i]
            );
        }
    }

    #[test]
    fn graph_categorical_logp_matches_value_fn() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let logits = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let actions = [0usize, 3, 1, 2, 2];
        let g = Graph::new();
        let lv = g.input(logits.clone());
        let lp = categorical_log_prob(&g, lv, &actions);
        let got = g.value(lp);
        for i in 0..5 {
            let want = categorical_logp_value(logits.row(i).data(), actions[i]);
            assert!((got.data()[i] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn gaussian_logp_grad_check_wrt_mu() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mu0 = Tensor::randn(&[3, 2], 0.5, &mut rng);
        let ls = Tensor::zeros(&[2]);
        let actions = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let g = Graph::new();
        let muv = g.input(mu0.clone());
        let lsv = g.input(ls.clone());
        let lp = gaussian_log_prob(&g, muv, lsv, &actions);
        let loss = g.mean_all(lp);
        let grad = g.backward(loss, &[muv]).remove(0);
        // d logp / d mu = (a - mu) / sigma^2; mean over batch divides by B.
        for i in 0..mu0.numel() {
            let want = (actions.data()[i] - mu0.data()[i]) / 3.0;
            assert!((grad.data()[i] - want).abs() < 1e-4);
        }
    }

    #[test]
    fn categorical_entropy_uniform_is_log_k() {
        let g = Graph::new();
        let logits = g.input(Tensor::zeros(&[2, 8]));
        let h = categorical_entropy_mean(&g, logits);
        let got = g.value(h).data()[0];
        assert!((got - (8f32).ln()).abs() < 1e-5, "{got}");
    }

    #[test]
    fn gaussian_entropy_unit_variance() {
        let g = Graph::new();
        let ls = g.input(Tensor::zeros(&[3]));
        let h = gaussian_entropy(&g, ls, 3);
        let want = 0.5 * 3.0 * (1.0 + LN_2PI);
        assert!((g.value(h).data()[0] - want).abs() < 1e-5);
    }

    #[test]
    fn kl_zero_when_equal_categorical() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let logits = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let g = Graph::new();
        let newv = g.input(logits.clone());
        let kl = categorical_kl_mean(&g, &logits, newv);
        assert!(g.value(kl).data()[0].abs() < 1e-5);
        // Value-side agreement.
        assert!(categorical_kl_value(logits.row(0).data(), logits.row(0).data()).abs() < 1e-6);
    }

    #[test]
    fn kl_positive_when_different() {
        let old = Tensor::from_vec(vec![2.0, 0.0, 0.0], &[1, 3]);
        let new = Tensor::from_vec(vec![0.0, 2.0, 0.0], &[1, 3]);
        let g = Graph::new();
        let newv = g.input(new.clone());
        let kl = categorical_kl_mean(&g, &old, newv);
        let got = g.value(kl).data()[0];
        let want = categorical_kl_value(old.row(0).data(), new.row(0).data());
        assert!(got > 0.1);
        assert!((got - want).abs() < 1e-5);
    }

    #[test]
    fn gaussian_kl_graph_matches_value() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mu_old = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let ls_old = Tensor::randn(&[2], 0.2, &mut rng);
        let mu_new = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let ls_new = Tensor::randn(&[2], 0.2, &mut rng);
        let g = Graph::new();
        let muv = g.input(mu_new.clone());
        let lsv = g.input(ls_new.clone());
        let kl = gaussian_kl_mean(&g, &mu_old, &ls_old, muv, lsv);
        let got = g.value(kl).data()[0];
        let want: f32 = (0..3)
            .map(|i| {
                gaussian_kl_value(
                    mu_old.row(i).data(),
                    ls_old.data(),
                    mu_new.row(i).data(),
                    ls_new.data(),
                )
            })
            .sum::<f32>()
            / 3.0;
        assert!((got - want).abs() < 1e-4, "{got} vs {want}");
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Heavily peaked logits: action 2 should dominate.
        let logits = [0.0f32, 0.0, 6.0, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..500 {
            let (a, lp) = sample_categorical(&logits, &mut rng);
            counts[a] += 1;
            assert!(lp <= 0.0);
        }
        assert!(counts[2] > 450, "{counts:?}");
    }

    #[test]
    fn gaussian_sampling_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mu = [1.0f32, -1.0];
        let ls = [0.0f32, 0.0];
        let mut sums = [0.0f64; 2];
        let n = 4000;
        for _ in 0..n {
            let (a, lp) = sample_gaussian(&mu, &ls, &mut rng);
            sums[0] += a[0] as f64;
            sums[1] += a[1] as f64;
            assert!(lp.is_finite());
        }
        assert!((sums[0] / n as f64 - 1.0).abs() < 0.1);
        assert!((sums[1] / n as f64 + 1.0).abs() < 0.1);
    }

    #[test]
    fn argmax_picks_mode() {
        let (a, lp) = argmax_categorical(&[0.1, 3.0, -1.0]);
        assert_eq!(a, 1);
        assert!(lp < 0.0);
    }
}
