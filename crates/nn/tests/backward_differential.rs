//! Differential tests pinning the packed hot-path kernels to the retained
//! naive references.
//!
//! The GEMM contract is **bit-exact** (see the exactness argument in
//! `gemm.rs`): the packed kernel adds products in the same ascending-`k`
//! order as the naive `ikj` loop, never fuses multiply and add, and splits
//! the reduction only at exact f32 store/load boundaries — so every
//! comparison here is `==`, not a tolerance. The same holds for the
//! arena-recycling backward pass vs the historical cloning strategy: both
//! run the identical closures in the identical order, so gradients match
//! bit for bit on the Table II MLP and CNN.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stellaris_nn::gemm::{gemm, gemm_naive, MatRef};
use stellaris_nn::{bind_params, Activation, Cnn, Graph, Mlp, ParamSet, Tensor, Var};

fn randvec(rng: &mut ChaCha8Rng, n: usize) -> Vec<f32> {
    Tensor::randn(&[n.max(1)], 1.0, rng).data()[..n].to_vec()
}

proptest! {
    /// Packed GEMM is bit-identical to the naive reference for arbitrary
    /// shapes, including edge tiles (m, n not multiples of MR/NR) and
    /// reductions longer than one KC block.
    #[test]
    fn packed_gemm_matches_naive(
        m in 1usize..70,
        n in 1usize..70,
        k in 0usize..40,
        seed in 0u64..1000,
        accumulate in any::<bool>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = randvec(&mut rng, m * k);
        let b = randvec(&mut rng, k * n);
        let c0 = randvec(&mut rng, m * n);
        let mut c_naive = c0.clone();
        let mut c_packed = c0;
        gemm_naive(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut c_naive, accumulate);
        gemm(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut c_packed, accumulate);
        prop_assert_eq!(c_naive, c_packed);
    }

    /// Transposed views feed the packed kernel through stride swaps; the
    /// result must still match the naive reference walking the same strides.
    #[test]
    fn packed_gemm_matches_naive_transposed(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // a stored as [k, m], used as a^T; b stored as [n, k], used as b^T.
        let a = randvec(&mut rng, k * m);
        let b = randvec(&mut rng, n * k);
        let mut c_naive = vec![0.0f32; m * n];
        let mut c_packed = vec![0.0f32; m * n];
        let at = MatRef::new(&a, k, m).t();
        let bt = MatRef::new(&b, n, k).t();
        gemm_naive(at, bt, &mut c_naive, false);
        gemm(at, bt, &mut c_packed, false);
        prop_assert_eq!(c_naive, c_packed);
    }
}

#[test]
fn packed_gemm_matches_naive_beyond_one_kc_block() {
    // k = 700 spans multiple KC blocks; the store/load seam must not
    // reassociate the per-element sum.
    let (m, n, k) = (9, 21, 700);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = randvec(&mut rng, m * k);
    let b = randvec(&mut rng, k * n);
    let mut c_naive = vec![0.0f32; m * n];
    let mut c_packed = vec![0.0f32; m * n];
    gemm_naive(
        MatRef::new(&a, m, k),
        MatRef::new(&b, k, n),
        &mut c_naive,
        false,
    );
    gemm(
        MatRef::new(&a, m, k),
        MatRef::new(&b, k, n),
        &mut c_packed,
        false,
    );
    assert_eq!(c_naive, c_packed);
}

/// Builds the graph, runs one forward pass, and returns gradients from the
/// requested strategy.
fn grads_of(
    x: &Tensor,
    params: &[&Tensor],
    fwd: impl Fn(&Graph, &[Var]) -> Var,
    cloning: bool,
) -> Vec<Tensor> {
    let g = Graph::new();
    let mut vars = vec![g.input(x.clone())];
    vars.extend(bind_params(&g, params));
    let out = fwd(&g, &vars);
    let loss = g.mean_all(g.square(out));
    if cloning {
        g.backward_cloning(loss, &vars[1..])
    } else {
        g.backward(loss, &vars[1..])
    }
}

#[test]
fn inplace_backward_matches_cloning_on_table2_mlp() {
    // Table II Hopper actor: 11 -> 256 -> 256 -> 3.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mlp = Mlp::new(&[11, 256, 256, 3], Activation::Tanh, 0.01, &mut rng);
    let x = Tensor::randn(&[16, 11], 1.0, &mut rng);
    let params = mlp.params();
    let fwd = |g: &Graph, vars: &[Var]| mlp.forward(g, vars[0], &vars[1..]);
    let arena = grads_of(&x, &params, fwd, false);
    let cloned = grads_of(&x, &params, fwd, true);
    assert_eq!(arena.len(), cloned.len());
    for (a, c) in arena.iter().zip(&cloned) {
        assert_eq!(a, c, "arena backward diverged from the cloning reference");
    }
}

#[test]
fn inplace_backward_matches_cloning_on_table2_cnn() {
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let cnn = Cnn::table2([4, 20, 20], 6, 0.01, &mut rng);
    let x = Tensor::randn(&[3, cnn.in_dim()], 1.0, &mut rng);
    let params = cnn.params();
    let fwd = |g: &Graph, vars: &[Var]| cnn.forward(g, vars[0], &vars[1..]);
    let arena = grads_of(&x, &params, fwd, false);
    let cloned = grads_of(&x, &params, fwd, true);
    assert_eq!(arena.len(), cloned.len());
    for (a, c) in arena.iter().zip(&cloned) {
        assert_eq!(a, c, "arena backward diverged from the cloning reference");
    }
}

#[test]
fn backward_into_reuses_buffers_and_matches_backward() {
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    let mlp = Mlp::new(&[5, 8, 2], Activation::Relu, 1.0, &mut rng);
    let params = mlp.params();
    let mut grads: Vec<Tensor> = Vec::new();
    for step in 0..3 {
        let x = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let g = Graph::new();
        let mut vars = vec![g.input(x.clone())];
        vars.extend(bind_params(&g, &params));
        let out = mlp.forward(&g, vars[0], &vars[1..]);
        let loss = g.mean_all(g.square(out));
        g.backward_into(loss, &vars[1..], &mut grads);
        let fresh = g.backward(loss, &vars[1..]);
        assert_eq!(grads, fresh, "backward_into diverged at step {step}");
    }
}

#[test]
fn multi_use_node_gradients_match_between_strategies() {
    // A node consumed by several ops exercises the accumulation ("+=") path
    // in both strategies; order is identical, so equality is still exact.
    let mut rng = ChaCha8Rng::seed_from_u64(45);
    let w = Tensor::randn(&[6, 6], 1.0, &mut rng);
    let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
    let run = |cloning: bool| {
        let g = Graph::new();
        let xv = g.input(x.clone());
        let wv = g.input(w.clone());
        let h = g.matmul(xv, wv);
        let s = g.add(g.tanh(h), g.square(h)); // h used twice
        let loss = g.mean_all(g.mul(s, s)); // s used twice
        if cloning {
            g.backward_cloning(loss, &[xv, wv])
        } else {
            g.backward(loss, &[xv, wv])
        }
    };
    assert_eq!(run(false), run(true));
}
