//! # stellaris-obs
//!
//! The answers layer on top of `stellaris-telemetry`'s raw spans and
//! metrics (DESIGN.md §13):
//!
//! * **[`report`]** — the run ledger: every `TrainResult` serialises into
//!   a structured `RunReport` (config hash, seed, staleness summary,
//!   stage attribution, cost, faults, SLO verdicts) under `runs/*.json`.
//! * **[`diff`]** — threshold-based comparison of two reports with a CI
//!   pass/fail verdict; straggler/retry stage growth, cost and fault
//!   regressions surface as named keys.
//! * **[`dash`]** — the plain-text live dashboard panel the `obs` binary
//!   tails while a sim runs.
//! * **[`jsonv`]** — a minimal JSON value DOM for reading our own
//!   artifacts back (reports, flight-recorder JSONL dumps).
//!
//! The flight recorder and the critical-path analyzer themselves live in
//! `stellaris_telemetry::{recorder, attribution}` so every crate can feed
//! them without a dependency cycle; this crate consumes their output.

#![warn(missing_docs)]

pub mod dash;
pub mod diff;
pub mod jsonv;
pub mod report;

pub use dash::Dashboard;
pub use diff::{diff, diff_bench, DiffOptions, DiffReport, Direction};
pub use jsonv::Value;
pub use report::{config_hash, maybe_write_report, RunReport, SloVerdict};

use stellaris_telemetry::{attribution, AttrEvent};

/// Parses flight-recorder / trace JSONL text into analysis-ready events,
/// skipping blank lines; fails on the first malformed line.
pub fn parse_jsonl_events(text: &str) -> Result<Vec<AttrEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = jsonv::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: no name", i + 1))?
            .to_owned();
        let span = v.get("type").and_then(Value::as_str) == Some("span");
        let round = if name == "core.round" {
            v.get("fields")
                .and_then(|f| f.get("round"))
                .and_then(Value::as_u64)
        } else {
            None
        };
        out.push(AttrEvent {
            name,
            span,
            id: v.get("id").and_then(Value::as_u64).unwrap_or(0),
            parent: v.get("parent").and_then(Value::as_u64).unwrap_or(0),
            tid: v.get("tid").and_then(Value::as_u64).unwrap_or(0),
            ts_us: v.get("ts_us").and_then(Value::as_u64).unwrap_or(0),
            dur_us: v.get("dur_us").and_then(Value::as_u64).unwrap_or(0),
            round,
        });
    }
    Ok(out)
}

/// Convenience: parse a JSONL dump and attribute it in one step.
pub fn attribute_jsonl(text: &str) -> Result<attribution::RunAttribution, String> {
    parse_jsonl_events(text).map(|ev| attribution::attribute(&ev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip_attributes_like_live_events() {
        let jsonl = "\
{\"type\":\"span\",\"name\":\"core.round\",\"id\":1,\"parent\":0,\"tid\":1,\"ts_us\":0,\"dur_us\":100,\"fields\":{\"round\":4}}
{\"type\":\"span\",\"name\":\"nn.backward\",\"id\":2,\"parent\":1,\"tid\":1,\"ts_us\":10,\"dur_us\":80,\"fields\":{}}
{\"type\":\"instant\",\"name\":\"bench.progress\",\"id\":3,\"parent\":0,\"tid\":1,\"ts_us\":50,\"dur_us\":0,\"fields\":{}}
";
        let run = attribute_jsonl(jsonl).unwrap_or_default();
        assert_eq!(run.rounds.len(), 1);
        assert_eq!(run.rounds[0].round, 4);
        let compute = run.rounds[0].stages[&stellaris_telemetry::Stage::Compute];
        assert_eq!(compute.blamed_us, 80);
        assert!((run.coverage() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn malformed_jsonl_reports_line_numbers() {
        let err = parse_jsonl_events("{\"name\":\"x\"}\nnot json")
            .err()
            .unwrap_or_default();
        assert!(err.contains("line 2"), "{err}");
    }
}
