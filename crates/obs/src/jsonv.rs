//! A minimal JSON value DOM for reading back our own artifacts
//! (`runs/*.json` reports, flight-recorder JSONL lines).
//!
//! `stellaris-telemetry` already has a validating JSON *recognizer*
//! ([`stellaris_telemetry::validate_json`]); this module adds the value
//! tree the `obs diff`/`obs attribute` subcommands need. It parses the
//! subset our writers emit — which is standard JSON — with a recursion
//! depth cap, and returns `Result` everywhere (lint rule L1: no panics).

use std::collections::BTreeMap;

/// Maximum nesting depth accepted; our artifacts nest ~5 deep.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (f64 loses no precision our writers use beyond
    /// u64 > 2^53 counters, which never carry semantic meaning that large).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalised (sorted) by the map.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to u64 (negative → 0).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| if n <= 0.0 { 0 } else { n as u64 })
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", char::from(c), self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected , or ] at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            out.insert(key, self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected , or }} at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u at offset {}", self.i))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xc0) == 0x80 {
                        self.i += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.b[start..self.i]) {
                        out.push_str(s);
                    }
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse("true"), Ok(Value::Bool(true)));
        assert_eq!(parse(" -2.5e1 "), Ok(Value::Num(-25.0)));
        assert_eq!(parse("\"a\\nb\""), Ok(Value::Str("a\nb".to_owned())));
        let v = parse("{\"k\":[1,2,{\"x\":\"y\"}]}").unwrap_or(Value::Null);
        let arr = v.get("k").and_then(Value::as_array).unwrap_or(&[]);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("x").and_then(Value::as_str), Some("y"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "1 2", "\"open", "nul", "{a:1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(400) + &"]".repeat(400);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u00e9\\u2713\""), Ok(Value::Str("é✓".to_owned())));
        assert_eq!(parse("\"µs\""), Ok(Value::Str("µs".to_owned())));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The reader is exposed to artifacts on disk, which a crashed
            // writer can truncate or interleave arbitrarily: any byte
            // input must come back as `Err`, never a panic or a stack
            // overflow (the depth cap guards the recursive descent).
            #[test]
            fn arbitrary_strings_never_panic(s in ".{0,256}") {
                let _ = parse(&s);
            }

            #[test]
            fn arbitrary_bytes_never_panic(b in proptest::collection::vec(any::<u8>(), 0..512)) {
                let s = String::from_utf8_lossy(&b);
                let _ = parse(&s);
            }

            #[test]
            fn structural_soup_never_panics(s in "[\\[\\]{}\",:0-9eE.+-]{0,600}") {
                // Heavy on JSON structure bytes so deep nesting and dangling
                // delimiters actually get exercised, not just rejected at
                // the first byte.
                let _ = parse(&s);
            }

            #[test]
            fn valid_scalars_always_parse(n in -1e9f64..1e9) {
                let v = parse(&format!("{n}"));
                prop_assert!(v.is_ok(), "{n} must parse: {v:?}");
            }
        }
    }

    #[test]
    fn roundtrips_a_telemetry_jsonl_line() {
        let line = "{\"type\":\"span\",\"name\":\"core.round\",\"id\":7,\"parent\":0,\"tid\":3,\"ts_us\":12,\"dur_us\":900,\"fields\":{\"round\":2,\"degraded\":true}}";
        let v = parse(line).unwrap_or(Value::Null);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("core.round"));
        assert_eq!(v.get("dur_us").and_then(Value::as_u64), Some(900));
        let fields = v.get("fields").cloned().unwrap_or(Value::Null);
        assert_eq!(fields.get("round").and_then(Value::as_u64), Some(2));
        assert_eq!(fields.get("degraded"), Some(&Value::Bool(true)));
    }
}
