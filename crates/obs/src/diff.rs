//! `obs diff`: threshold-based comparison of two `RunReport` JSON files.
//!
//! Report **A** is the baseline, **B** the candidate. A key *regresses*
//! when B exceeds A by more than the allowed slack:
//!
//! * time-like keys (stage µs, wall seconds, cost): `b > a·(1+rel) + abs`
//! * count-like keys (faults, retries, degraded rounds, drops):
//!   `b > a + abs_count`
//!
//! Per-stage comparison uses **raw** (inclusive) stage time as the primary
//! signal — a straggler sleeping under concurrent learner compute is
//! invisible in the exclusive blame partition but fully visible raw — and
//! reports blamed time alongside. `pass()` is the CI gate: true iff no key
//! regressed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::jsonv::Value;

/// Diff thresholds.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Relative slack on time-like keys (0.10 = +10% allowed).
    pub rel: f64,
    /// Absolute slack on stage times, µs.
    pub abs_us: f64,
    /// Absolute slack on wall time, seconds.
    pub abs_s: f64,
    /// Absolute slack on cost, USD.
    pub abs_usd: f64,
    /// Absolute slack on count-like keys.
    pub abs_count: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            rel: 0.10,
            abs_us: 500.0,
            abs_s: 0.05,
            abs_usd: 1e-6,
            abs_count: 0.0,
        }
    }
}

/// One compared key.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Dotted key path (e.g. `stage.straggle.raw_us`).
    pub key: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// Whether B regressed past the slack.
    pub regressed: bool,
}

/// A full report-pair comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every compared key, in comparison order.
    pub deltas: Vec<Delta>,
    /// Keys present in only one report (config drift warnings).
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// CI verdict: no regressions.
    pub fn pass(&self) -> bool {
        self.deltas.iter().all(|d| !d.regressed)
    }

    /// Keys that regressed, widest absolute delta first.
    pub fn regressions(&self) -> Vec<&Delta> {
        let mut r: Vec<&Delta> = self.deltas.iter().filter(|d| d.regressed).collect();
        r.sort_by(|x, y| {
            let dx = (x.b - x.a).abs();
            let dy = (y.b - y.a).abs();
            dy.partial_cmp(&dx).unwrap_or(std::cmp::Ordering::Equal)
        });
        r
    }

    /// Plain-text table: regressions first, then the rest, then warnings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<34} {:>14} {:>14} {:>10}  verdict",
            "key", "baseline", "candidate", "delta"
        );
        let mut rows: Vec<&Delta> = self.deltas.iter().collect();
        rows.sort_by_key(|d| !d.regressed);
        for d in rows {
            let _ = writeln!(
                out,
                "{:<34} {:>14.3} {:>14.3} {:>+10.3}  {}",
                d.key,
                d.a,
                d.b,
                d.b - d.a,
                if d.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        let _ = writeln!(
            out,
            "result: {} ({} keys, {} regressed)",
            if self.pass() { "PASS" } else { "FAIL" },
            self.deltas.len(),
            self.regressions().len()
        );
        out
    }
}

fn num_at(v: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for p in path {
        // Objects index by key; arrays by digit segments (`scale.0.speedup`).
        cur = match cur.get(p) {
            Some(next) => next,
            None => cur.as_array()?.get(p.parse::<usize>().ok()?)?,
        };
    }
    cur.as_f64()
}

/// Which way a benchmark key regresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Higher candidate value is worse (latency, bytes, shed counts).
    HigherWorse,
    /// Lower candidate value is worse (throughput, speedup).
    LowerWorse,
}

impl Direction {
    /// Parses the `:up` / `:down` suffix of a `--keys` spec entry:
    /// `up` = value going up is worse, `down` = value going down is worse.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "up" => Some(Self::HigherWorse),
            "down" => Some(Self::LowerWorse),
            _ => None,
        }
    }
}

/// Compares two arbitrary benchmark JSON documents over an explicit key
/// list (A = baseline, B = candidate). Each key is a dotted path plus a
/// [`Direction`]; a key regresses when the candidate moves past the
/// relative slack in the *worse* direction:
///
/// * `HigherWorse`: `b > a·(1+rel) + abs_count`
/// * `LowerWorse`:  `b < a·(1−rel) − abs_count`
///
/// Keys missing from either document become warnings, not failures —
/// same contract as [`diff`]. This is the CI gate for bench artifacts
/// like `BENCH_scale.json`, where the schema is bench-specific and only
/// a deterministic subset of keys is stable enough to gate on.
pub fn diff_bench(
    a: &Value,
    b: &Value,
    opts: &DiffOptions,
    keys: &[(&str, Direction)],
) -> DiffReport {
    let mut out = DiffReport::default();
    for (key, dir) in keys {
        let path: Vec<&str> = key.split('.').collect();
        let (av, bv) = (num_at(a, &path), num_at(b, &path));
        match (av, bv) {
            (Some(x), Some(y)) => {
                let regressed = match dir {
                    Direction::HigherWorse => y > x * (1.0 + opts.rel) + opts.abs_count,
                    Direction::LowerWorse => y < x * (1.0 - opts.rel) - opts.abs_count,
                };
                out.deltas.push(Delta {
                    key: (*key).to_owned(),
                    a: x,
                    b: y,
                    regressed,
                });
            }
            (None, None) => out.warnings.push(format!("{key}: missing in both reports")),
            _ => out
                .warnings
                .push(format!("{key}: present in only one report")),
        }
    }
    out
}

/// Sums per-stage `raw_us`/`blamed_us` across a report's attribution
/// rounds: `stage label -> (raw, blamed)`.
fn stage_totals(report: &Value) -> BTreeMap<String, (f64, f64)> {
    let mut out: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let rounds = report
        .get("attribution")
        .and_then(|a| a.get("rounds"))
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    for round in rounds {
        let Some(stages) = round.get("stages").and_then(Value::as_object) else {
            continue;
        };
        for (label, b) in stages {
            let raw = num_at(b, &["raw_us"]).unwrap_or(0.0);
            let blamed = num_at(b, &["blamed_us"]).unwrap_or(0.0);
            let e = out.entry(label.clone()).or_insert((0.0, 0.0));
            e.0 += raw;
            e.1 += blamed;
        }
    }
    out
}

/// Compares two parsed `RunReport` documents (A = baseline, B = candidate).
pub fn diff(a: &Value, b: &Value, opts: &DiffOptions) -> DiffReport {
    let mut out = DiffReport::default();

    let time_regress = |a: f64, b: f64, abs: f64| -> bool { b > a * (1.0 + opts.rel) + abs };
    let count_regress = |a: f64, b: f64| -> bool { b > a + opts.abs_count };

    // Config sanity: differing hashes are comparable, but the reader
    // should know.
    let (ha, hb) = (num_at(a, &["config_hash"]), num_at(b, &["config_hash"]));
    if let (Some(ha), Some(hb)) = (ha, hb) {
        if ha != hb {
            out.warnings
                .push("config_hash differs: comparing different configurations".to_owned());
        }
    }

    let mut add = |key: &str, av: Option<f64>, bv: Option<f64>, regressed: bool| {
        if let (Some(a), Some(b)) = (av, bv) {
            out.deltas.push(Delta {
                key: key.to_owned(),
                a,
                b,
                regressed,
            });
        } else if av.is_some() != bv.is_some() {
            out.warnings
                .push(format!("{key}: present in only one report"));
        }
    };

    // Scalar time/cost keys.
    for (key, abs) in [
        ("wall_time_s", opts.abs_s),
        ("cost_usd", opts.abs_usd),
        ("cost_wasted_usd", opts.abs_usd),
    ] {
        let (av, bv) = (num_at(a, &[key]), num_at(b, &[key]));
        let reg = matches!((av, bv), (Some(x), Some(y)) if time_regress(x, y, abs));
        add(key, av, bv, reg);
    }

    // Count keys: any increase beyond abs_count regresses.
    for key in [
        "degraded_rounds",
        "slots_leaked",
        "cold_starts",
        "dropped_events",
    ] {
        let (av, bv) = (num_at(a, &[key]), num_at(b, &[key]));
        let reg = matches!((av, bv), (Some(x), Some(y)) if count_regress(x, y));
        add(key, av, bv, reg);
    }
    for key in [
        "injected_failures",
        "injected_crashes",
        "injected_stragglers",
        "frames_dropped",
        "frames_corrupted",
        "retries",
        "exhausted",
    ] {
        let (av, bv) = (num_at(a, &["faults", key]), num_at(b, &["faults", key]));
        let reg = matches!((av, bv), (Some(x), Some(y)) if count_regress(x, y));
        add(&format!("faults.{key}"), av, bv, reg);
    }

    // Staleness distribution.
    for key in ["mean", "max", "p50"] {
        let (av, bv) = (
            num_at(a, &["staleness", key]),
            num_at(b, &["staleness", key]),
        );
        let reg =
            matches!((av, bv), (Some(x), Some(y)) if time_regress(x, y, opts.abs_count.max(1.0)));
        add(&format!("staleness.{key}"), av, bv, reg);
    }

    // Per-stage attribution: union of stage labels, raw time primary.
    let (sa, sb) = (stage_totals(a), stage_totals(b));
    let mut labels: Vec<&String> = sa.keys().chain(sb.keys()).collect();
    labels.sort();
    labels.dedup();
    for label in labels {
        let (ar, ab) = sa.get(label).copied().unwrap_or((0.0, 0.0));
        let (br, bb) = sb.get(label).copied().unwrap_or((0.0, 0.0));
        add(
            &format!("stage.{label}.raw_us"),
            Some(ar),
            Some(br),
            time_regress(ar, br, opts.abs_us),
        );
        add(
            &format!("stage.{label}.blamed_us"),
            Some(ab),
            Some(bb),
            time_regress(ab, bb, opts.abs_us),
        );
    }

    // Attribution coverage dropping below the SLO floor is a regression
    // regardless of the baseline.
    let (ca, cb) = (
        num_at(a, &["attribution", "coverage"]),
        num_at(b, &["attribution", "coverage"]),
    );
    let reg = matches!(cb, Some(c) if c < 0.95);
    add("attribution.coverage", ca, cb, reg);

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv;

    fn report(straggle_raw: u64, retries: u64, wall: f64) -> Value {
        let json = format!(
            "{{\"config_hash\":42,\"wall_time_s\":{wall},\"cost_usd\":0.001,\"cost_wasted_usd\":0.0,\
             \"degraded_rounds\":0,\"slots_leaked\":0,\"cold_starts\":2,\"dropped_events\":0,\
             \"faults\":{{\"injected_failures\":0,\"injected_crashes\":0,\"injected_stragglers\":0,\
             \"frames_dropped\":0,\"frames_corrupted\":0,\"retries\":{retries},\"exhausted\":0}},\
             \"staleness\":{{\"count\":10,\"mean\":1.0,\"max\":3,\"p50\":1}},\
             \"attribution\":{{\"coverage\":0.99,\"wall_us\":100000,\"rounds\":[\
               {{\"round\":0,\"stages\":{{\"straggle\":{{\"blamed_us\":10,\"raw_us\":{straggle_raw}}},\
                 \"gemm/backward\":{{\"blamed_us\":50000,\"raw_us\":60000}}}}}}]}}}}"
        );
        jsonv::parse(&json).unwrap_or(Value::Null)
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(0, 0, 1.0);
        let d = diff(&a, &a, &DiffOptions::default());
        assert!(d.pass(), "{}", d.render());
        assert!(d.warnings.is_empty());
    }

    #[test]
    fn straggle_and_retry_growth_regresses() {
        let clean = report(0, 0, 1.0);
        let chaos = report(9000, 6, 1.4);
        let d = diff(&clean, &chaos, &DiffOptions::default());
        assert!(!d.pass());
        let keys: Vec<&str> = d.regressions().iter().map(|r| r.key.as_str()).collect();
        assert!(keys.contains(&"stage.straggle.raw_us"), "{keys:?}");
        assert!(keys.contains(&"faults.retries"), "{keys:?}");
        assert!(keys.contains(&"wall_time_s"), "{keys:?}");
        // The unchanged compute stage does not regress.
        assert!(!keys.contains(&"stage.gemm/backward.raw_us"), "{keys:?}");
    }

    #[test]
    fn slack_absorbs_noise() {
        let a = report(1000, 0, 1.0);
        // +400µs on a 1000µs baseline stays inside 1.1×1000 + 500µs slack.
        let b = report(1400, 0, 1.04);
        let d = diff(&a, &b, &DiffOptions::default());
        assert!(d.pass(), "{}", d.render());
    }

    #[test]
    fn coverage_floor_is_absolute() {
        let a = report(0, 0, 1.0);
        let mut low = report(0, 0, 1.0);
        if let Value::Obj(m) = &mut low {
            if let Some(Value::Obj(attr)) = m.get_mut("attribution") {
                attr.insert("coverage".to_owned(), Value::Num(0.80));
            }
        }
        let d = diff(&a, &low, &DiffOptions::default());
        let keys: Vec<&str> = d.regressions().iter().map(|r| r.key.as_str()).collect();
        assert!(keys.contains(&"attribution.coverage"), "{keys:?}");
    }

    #[test]
    fn missing_keys_warn_instead_of_failing() {
        let a = report(0, 0, 1.0);
        let b = jsonv::parse("{\"wall_time_s\":1.0}").unwrap_or(Value::Null);
        let d = diff(&a, &b, &DiffOptions::default());
        assert!(!d.warnings.is_empty());
    }

    fn bench(full: u64, fraction: f64, speedup: f64) -> Value {
        let json = format!(
            "{{\"wire\":{{\"full_snapshot_bytes\":{full},\"delta_fraction\":{fraction}}},\
             \"scale\":{{\"speedup\":{speedup}}}}}"
        );
        jsonv::parse(&json).unwrap_or(Value::Null)
    }

    const BENCH_KEYS: &[(&str, Direction)] = &[
        ("wire.full_snapshot_bytes", Direction::HigherWorse),
        ("wire.delta_fraction", Direction::HigherWorse),
        ("scale.speedup", Direction::LowerWorse),
    ];

    #[test]
    fn bench_identical_passes() {
        let a = bench(555048, 0.125, 5.4);
        let d = diff_bench(&a, &a, &DiffOptions::default(), BENCH_KEYS);
        assert!(d.pass(), "{}", d.render());
        assert_eq!(d.deltas.len(), 3);
        assert!(d.warnings.is_empty());
    }

    #[test]
    fn bench_higher_worse_regresses_upward_only() {
        let a = bench(555048, 0.125, 5.4);
        // Delta fraction blowing up is a regression; bytes shrinking is not.
        let b = bench(400000, 0.24, 5.4);
        let d = diff_bench(&a, &b, &DiffOptions::default(), BENCH_KEYS);
        let keys: Vec<&str> = d.regressions().iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, ["wire.delta_fraction"], "{}", d.render());
    }

    #[test]
    fn bench_lower_worse_catches_throughput_loss() {
        let a = bench(555048, 0.125, 5.4);
        let b = bench(555048, 0.125, 3.0);
        let d = diff_bench(&a, &b, &DiffOptions::default(), BENCH_KEYS);
        let keys: Vec<&str> = d.regressions().iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, ["scale.speedup"], "{}", d.render());
        // An *increase* in a LowerWorse key never regresses.
        let faster = bench(555048, 0.125, 9.0);
        assert!(diff_bench(&a, &faster, &DiffOptions::default(), BENCH_KEYS).pass());
    }

    #[test]
    fn bench_slack_absorbs_relative_noise() {
        let a = bench(555048, 0.125, 5.4);
        // +8% bytes and -8% speedup both stay inside the 10% rel slack.
        let b = bench(599452, 0.125, 4.97);
        let d = diff_bench(&a, &b, &DiffOptions::default(), BENCH_KEYS);
        assert!(d.pass(), "{}", d.render());
    }

    #[test]
    fn bench_missing_keys_warn() {
        let a = bench(555048, 0.125, 5.4);
        let b = jsonv::parse("{\"wire\":{\"full_snapshot_bytes\":1}}").unwrap_or(Value::Null);
        let d = diff_bench(&a, &b, &DiffOptions::default(), BENCH_KEYS);
        assert_eq!(d.deltas.len(), 1);
        assert_eq!(d.warnings.len(), 2);
        let missing_both = diff_bench(
            &a,
            &a,
            &DiffOptions::default(),
            &[("no.such.key", Direction::HigherWorse)],
        );
        assert!(missing_both.deltas.is_empty());
        assert_eq!(missing_both.warnings.len(), 1);
    }

    #[test]
    fn bench_paths_index_into_arrays() {
        let a = jsonv::parse("{\"scale\":[{\"speedup\":6.0},{\"speedup\":5.4}]}")
            .unwrap_or(Value::Null);
        let b = jsonv::parse("{\"scale\":[{\"speedup\":6.0},{\"speedup\":2.0}]}")
            .unwrap_or(Value::Null);
        let keys = [("scale.1.speedup", Direction::LowerWorse)];
        let d = diff_bench(&a, &b, &DiffOptions::default(), &keys);
        assert_eq!(d.deltas.len(), 1);
        assert!(!d.pass(), "{}", d.render());
    }

    #[test]
    fn direction_parse_round_trips_spec_suffixes() {
        assert_eq!(Direction::parse("up"), Some(Direction::HigherWorse));
        assert_eq!(Direction::parse("down"), Some(Direction::LowerWorse));
        assert_eq!(Direction::parse("sideways"), None);
    }
}
