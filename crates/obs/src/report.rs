//! The run ledger: every finished `TrainResult` serialises into a
//! structured `RunReport` under `runs/*.json`, keyed by config hash +
//! seed, so any two runs — clean vs chaos, controller A vs B — can be
//! diffed offline (`obs diff`) or gated in CI.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use stellaris_core::{TrainConfig, TrainResult};
use stellaris_telemetry::escape_into;
use stellaris_telemetry::RunAttribution;

/// One SLO check evaluated at report time: `value` against `limit`.
#[derive(Clone, Debug)]
pub struct SloVerdict {
    /// Check name (stable key for diffing).
    pub name: &'static str,
    /// Observed value.
    pub value: f64,
    /// Pass threshold (inclusive semantics depend on the check; recorded
    /// for the reader).
    pub limit: f64,
    /// Whether the run satisfied the objective.
    pub pass: bool,
}

/// Compact staleness distribution summary (the Fig. 3b shape in four
/// numbers plus the raw log length).
#[derive(Clone, Debug, Default)]
pub struct StalenessSummary {
    /// Aggregated-gradient count (== `staleness_log.len()`).
    pub count: u64,
    /// Mean staleness.
    pub mean: f64,
    /// Maximum staleness.
    pub max: u64,
    /// Median staleness.
    pub p50: u64,
}

impl StalenessSummary {
    fn from_log(log: &[u64]) -> Self {
        if log.is_empty() {
            return Self::default();
        }
        let mut sorted = log.to_vec();
        sorted.sort_unstable();
        let sum: u64 = sorted.iter().sum();
        StalenessSummary {
            count: sorted.len() as u64,
            mean: sum as f64 / sorted.len() as f64,
            max: *sorted.last().unwrap_or(&0),
            p50: sorted[sorted.len() / 2],
        }
    }
}

/// A structured record of one training run: everything `obs diff` and the
/// ROADMAP ablation harnesses need to compare runs without re-running them.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Config label (`<algo>+<topology>`).
    pub label: String,
    /// Environment name.
    pub env: String,
    /// FNV-1a hash over the full `TrainConfig` (resume snapshot stripped),
    /// so "same config" is checkable across machines.
    pub config_hash: u64,
    /// Master seed.
    pub seed: u64,
    /// Configured rounds.
    pub rounds: u64,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
    /// Final evaluation reward.
    pub final_reward: f64,
    /// Policy updates applied.
    pub policy_updates: u64,
    /// Gradients folded into the policy.
    pub grads_aggregated: u64,
    /// Learner invocations.
    pub learner_invocations: u64,
    /// Cold starts paid.
    pub cold_starts: u64,
    /// Degraded (quorum) rounds.
    pub degraded_rounds: u64,
    /// Slot permits leaked (SLO: must be 0).
    pub slots_leaked: u64,
    /// GPU-slot utilisation.
    pub gpu_utilization: f64,
    /// Total cost, USD.
    pub cost_usd: f64,
    /// Cost slice wasted on failed attempts, USD.
    pub cost_wasted_usd: f64,
    /// Injected faults by class, plus retries (flattened `FaultReport`).
    pub faults: Vec<(&'static str, u64)>,
    /// Component timers, seconds (flattened `TimerReport`).
    pub timers_s: Vec<(&'static str, f64)>,
    /// Staleness distribution summary.
    pub staleness: StalenessSummary,
    /// Trace events dropped by the telemetry sink during the run.
    pub dropped_events: u64,
    /// Per-round critical-path attribution, when a trace was captured.
    pub attribution: Option<RunAttribution>,
    /// SLO verdicts.
    pub slo: Vec<SloVerdict>,
}

/// FNV-1a over the config's `Debug` rendering, with the (potentially
/// megabyte-sized, content-irrelevant) resume snapshot stripped first.
pub fn config_hash(cfg: &TrainConfig) -> u64 {
    let mut stripped = cfg.clone();
    stripped.initial_snapshot = None;
    let repr = format!("{stripped:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in repr.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RunReport {
    /// Builds the ledger record for a finished run. `attribution` is
    /// attached when the caller captured a trace (the `obs` bin and the
    /// e2e tests do; headless bench runs may pass `None`).
    pub fn new(cfg: &TrainConfig, res: &TrainResult, attribution: Option<RunAttribution>) -> Self {
        let f = &res.faults;
        let t = &res.timers;
        let degraded_frac = if cfg.rounds == 0 {
            0.0
        } else {
            res.degraded_rounds as f64 / cfg.rounds as f64
        };
        let dropped = stellaris_telemetry::dropped_events();
        let mut slo = vec![
            SloVerdict {
                name: "no_slot_leak",
                value: res.slots_leaked as f64,
                limit: 0.0,
                pass: res.slots_leaked == 0,
            },
            SloVerdict {
                name: "degraded_round_fraction",
                value: degraded_frac,
                limit: 0.25,
                pass: degraded_frac <= 0.25,
            },
            SloVerdict {
                name: "no_dropped_trace_events",
                value: dropped as f64,
                limit: 0.0,
                pass: dropped == 0,
            },
        ];
        if let Some(attr) = &attribution {
            let cov = attr.coverage();
            slo.push(SloVerdict {
                name: "attribution_coverage",
                value: cov,
                limit: 0.95,
                pass: cov >= 0.95,
            });
        }
        RunReport {
            label: res.label.clone(),
            env: cfg.env_id.name().to_owned(),
            config_hash: config_hash(cfg),
            seed: cfg.seed,
            rounds: cfg.rounds as u64,
            wall_time_s: res.wall_time_s,
            final_reward: f64::from(res.final_reward),
            policy_updates: res.policy_updates,
            grads_aggregated: res.grads_aggregated,
            learner_invocations: res.learner_invocations,
            cold_starts: res.cold_starts,
            degraded_rounds: res.degraded_rounds,
            slots_leaked: res.slots_leaked,
            gpu_utilization: res.gpu_utilization,
            cost_usd: res.cost.total(),
            cost_wasted_usd: res.cost.wasted_usd,
            faults: vec![
                ("injected_failures", f.injected_failures),
                ("injected_crashes", f.injected_crashes),
                ("injected_stragglers", f.injected_stragglers),
                ("frames_dropped", f.frames_dropped),
                ("frames_corrupted", f.frames_corrupted),
                ("retries", f.retries),
                ("exhausted", f.exhausted),
            ],
            timers_s: vec![
                ("actor_sampling_s", t.actor_sampling_s),
                ("data_loading_s", t.data_loading_s),
                ("gradient_s", t.gradient_s),
                ("aggregation_s", t.aggregation_s),
                ("startup_s", t.startup_s),
                ("cache_s", t.cache_s),
            ],
            staleness: StalenessSummary::from_log(&res.staleness_log),
            dropped_events: dropped,
            attribution,
            slo,
        }
    }

    /// Whether every SLO verdict passed.
    pub fn slo_pass(&self) -> bool {
        self.slo.iter().all(|v| v.pass)
    }

    /// Canonical ledger file name: `<label>-seed<seed>-<hash8>.json`,
    /// label sanitised to `[a-z0-9-]`.
    pub fn file_name(&self) -> String {
        let mut label: String = self
            .label
            .to_ascii_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        if label.is_empty() {
            label.push('x');
        }
        format!(
            "{label}-seed{}-{:08x}.json",
            self.seed,
            self.config_hash & 0xffff_ffff
        )
    }

    /// Serialises the report as one JSON object.
    pub fn to_json(&self) -> String {
        fn num(out: &mut String, v: f64) {
            if v.is_finite() {
                let _ = write!(out, "{v:.6}");
            } else {
                out.push('0');
            }
        }
        let mut out = String::with_capacity(1024);
        out.push_str("{\"label\":\"");
        escape_into(&mut out, &self.label);
        out.push_str("\",\"env\":\"");
        escape_into(&mut out, &self.env);
        let _ = write!(
            out,
            "\",\"config_hash\":{},\"seed\":{},\"rounds\":{}",
            self.config_hash, self.seed, self.rounds
        );
        out.push_str(",\"wall_time_s\":");
        num(&mut out, self.wall_time_s);
        out.push_str(",\"final_reward\":");
        num(&mut out, self.final_reward);
        let _ = write!(
            out,
            ",\"policy_updates\":{},\"grads_aggregated\":{},\"learner_invocations\":{},\"cold_starts\":{},\"degraded_rounds\":{},\"slots_leaked\":{}",
            self.policy_updates,
            self.grads_aggregated,
            self.learner_invocations,
            self.cold_starts,
            self.degraded_rounds,
            self.slots_leaked
        );
        out.push_str(",\"gpu_utilization\":");
        num(&mut out, self.gpu_utilization);
        out.push_str(",\"cost_usd\":");
        num(&mut out, self.cost_usd);
        out.push_str(",\"cost_wasted_usd\":");
        num(&mut out, self.cost_wasted_usd);
        out.push_str(",\"faults\":{");
        for (i, (k, v)) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"timers_s\":{");
        for (i, (k, v)) in self.timers_s.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            num(&mut out, *v);
        }
        let _ = write!(
            out,
            "}},\"staleness\":{{\"count\":{},\"mean\":",
            self.staleness.count
        );
        num(&mut out, self.staleness.mean);
        let _ = write!(
            out,
            ",\"max\":{},\"p50\":{}}}",
            self.staleness.max, self.staleness.p50
        );
        let _ = write!(out, ",\"dropped_events\":{}", self.dropped_events);
        out.push_str(",\"attribution\":");
        match &self.attribution {
            Some(a) => out.push_str(&a.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"slo\":[");
        for (i, v) in self.slo.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"value\":", v.name);
            num(&mut out, v.value);
            out.push_str(",\"limit\":");
            num(&mut out, v.limit);
            let _ = write!(out, ",\"pass\":{}}}", v.pass);
        }
        let _ = write!(out, "],\"slo_pass\":{}}}", self.slo_pass());
        out
    }

    /// Writes the report under `dir` with its canonical [`Self::file_name`],
    /// returning the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        self.write_named(dir, &self.file_name())
    }

    /// Writes the report under `dir` with an explicit file name.
    pub fn write_named(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Ledger emission hook for harnesses: when `STELLARIS_RUNS_DIR` is set,
/// serialises a report (without attribution — the harness owns the trace)
/// into that directory. Returns the written path, `None` when the env var
/// is unset or the write failed (ledger emission never fails a run).
pub fn maybe_write_report(cfg: &TrainConfig, res: &TrainResult) -> Option<PathBuf> {
    let dir = std::env::var("STELLARIS_RUNS_DIR").ok()?;
    if dir.is_empty() {
        return None;
    }
    let report = RunReport::new(cfg, res, None);
    report.write_to(Path::new(&dir)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellaris_envs::EnvId;

    #[test]
    fn config_hash_is_stable_and_snapshot_blind() {
        let a = TrainConfig::test_tiny(EnvId::PointMass, 7);
        let b = TrainConfig::test_tiny(EnvId::PointMass, 7);
        assert_eq!(config_hash(&a), config_hash(&b));
        let c = TrainConfig::test_tiny(EnvId::PointMass, 8);
        assert_ne!(config_hash(&a), config_hash(&c), "seed is part of the hash");
        let d = TrainConfig::test_tiny(EnvId::ChainMdp, 7);
        assert_ne!(config_hash(&a), config_hash(&d));
    }

    #[test]
    fn staleness_summary_handles_empty_and_typical_logs() {
        let empty = StalenessSummary::from_log(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
        let s = StalenessSummary::from_log(&[0, 1, 1, 2, 9]);
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 9);
        assert_eq!(s.p50, 1);
        assert!((s.mean - 2.6).abs() < 1e-9);
    }
}
