//! The `obs` binary: live observability for Stellaris training runs.
//!
//! ```text
//! obs dash [--env NAME] [--rounds N] [--seed S] [--chaos SEED]
//!          [--interval-ms M] [--runs-dir DIR] [--flight-dir DIR]
//!          [--report-name FILE] [--dump-on-exit]
//!     Run a training job with the flight recorder armed, tailing a
//!     plain-text dashboard of the metrics registry to stderr; on
//!     completion print the per-round critical-path blame table and write
//!     a RunReport into the ledger.
//!
//! obs diff <a.json> <b.json> [--rel PCT] [--abs-us U] [--fail-on-regress]
//!     Compare two RunReports (A = baseline); prints the delta table.
//!     With --fail-on-regress, exits non-zero when any key regressed.
//!
//! obs diff-bench <a.json> <b.json> --keys SPEC [--rel PCT] [--fail-on-regress]
//!     Compare two arbitrary bench JSON files (A = baseline) over an
//!     explicit key list. SPEC is comma-separated `path:dir` entries,
//!     where `dir` is `up` (higher is worse) or `down` (lower is worse),
//!     e.g. `wire.delta_fraction:up,scale.0.sharded.rounds_per_sec:down`.
//!
//! obs attribute <dump.jsonl>
//!     Re-run the critical-path analyzer over a flight-recorder or
//!     STELLARIS_TRACE JSONL dump and print the blame table.
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use stellaris_core::{train, TrainConfig};
use stellaris_envs::EnvId;
use stellaris_obs::{diff, diff_bench, jsonv, Dashboard, DiffOptions, Direction, RunReport};
use stellaris_telemetry::{attribution, recorder, AttrEvent, RecorderConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("dash") => cmd_dash(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("diff-bench") => cmd_diff_bench(&args[1..]),
        Some("attribute") => cmd_attribute(&args[1..]),
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: obs <dash|diff|diff-bench|attribute> [options]");
    eprintln!("  dash       [--env NAME] [--rounds N] [--seed S] [--chaos SEED]");
    eprintln!("             [--interval-ms M] [--runs-dir DIR] [--flight-dir DIR]");
    eprintln!("             [--report-name FILE] [--dump-on-exit]");
    eprintln!("  diff       <a.json> <b.json> [--rel PCT] [--abs-us U] [--fail-on-regress]");
    eprintln!("  diff-bench <a.json> <b.json> --keys path:up,path:down,...");
    eprintln!("             [--rel PCT] [--fail-on-regress]");
    eprintln!("  attribute  <dump.jsonl>");
}

struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        let mut it = self.args.iter();
        while let Some(a) = it.next() {
            if a.strip_prefix("--") == Some(name) {
                return it.next().map(String::as_str);
            }
        }
        None
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a.strip_prefix("--") == Some(name))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn positional(&self) -> Vec<&'a str> {
        // Flag values are consumed pairwise, so skip the token after any
        // value-carrying flag.
        let mut out = Vec::new();
        let mut it = self.args.iter().peekable();
        while let Some(a) = it.next() {
            if a.starts_with("--") {
                if matches!(it.peek(), Some(v) if !v.starts_with("--")) {
                    it.next();
                }
            } else {
                out.push(a.as_str());
            }
        }
        out
    }
}

fn cmd_dash(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    let env_name = flags.get("env").unwrap_or("PointMass");
    let Some(env) = EnvId::parse(env_name) else {
        eprintln!("obs: unknown environment {env_name:?}");
        return ExitCode::FAILURE;
    };
    let seed = flags.num("seed", 1u64);
    let mut cfg = TrainConfig::test_tiny(env, seed);
    cfg.rounds = flags.num("rounds", cfg.rounds);
    if let Some(chaos_seed) = flags.get("chaos").and_then(|v| v.parse().ok()) {
        cfg = cfg.with_chaos(chaos_seed);
    }
    let interval = Duration::from_millis(flags.num("interval-ms", 200u64));
    let flight_dir = PathBuf::from(flags.get("flight-dir").unwrap_or("target/flight"));
    let runs_dir = PathBuf::from(flags.get("runs-dir").unwrap_or("runs"));

    recorder::install_panic_hook();
    recorder::arm(RecorderConfig {
        dir: flight_dir,
        ..RecorderConfig::default()
    });

    eprintln!(
        "obs dash: training {} on {} for {} rounds (seed {seed}{})",
        cfg.algo.name(),
        env.name(),
        cfg.rounds,
        if flags.has("chaos") { ", chaos on" } else { "" }
    );
    let train_cfg = cfg.clone();
    let worker = std::thread::spawn(move || train(&train_cfg));
    let dash = Dashboard::new();
    while !worker.is_finished() {
        eprintln!("{}", dash.render());
        std::thread::sleep(interval);
    }
    let Ok(result) = worker.join() else {
        eprintln!("obs dash: training thread panicked (see flight-recorder dump)");
        return ExitCode::FAILURE;
    };
    eprintln!("{}", dash.render());

    if flags.has("dump-on-exit") {
        match recorder::dump("manual") {
            Some(base) => eprintln!("obs dash: flight dump at {}.jsonl", base.display()),
            None => eprintln!("obs dash: flight dump failed"),
        }
    }

    // Attribute the full trace and print the blame table.
    stellaris_telemetry::flush_thread();
    let events: Vec<AttrEvent> = stellaris_telemetry::drain()
        .iter()
        .map(AttrEvent::from_event)
        .collect();
    let attr = attribution::attribute(&events);
    println!("{}", attr.render_table());

    let report = RunReport::new(&cfg, &result, Some(attr));
    let written = match flags.get("report-name") {
        Some(name) => report.write_named(&runs_dir, name),
        None => report.write_to(&runs_dir),
    };
    match written {
        Ok(path) => println!(
            "run report: {} (slo {})",
            path.display(),
            if report.slo_pass() { "PASS" } else { "FAIL" }
        ),
        Err(e) => {
            eprintln!("obs dash: cannot write run report: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    let pos = flags.positional();
    let [a_path, b_path] = pos.as_slice() else {
        eprintln!("obs diff: need exactly two report paths");
        return ExitCode::FAILURE;
    };
    let parse = |path: &str| -> Result<jsonv::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        jsonv::parse(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let (a, b) = match (parse(a_path), parse(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = DiffOptions {
        rel: flags.num("rel", 10.0f64) / 100.0,
        abs_us: flags.num("abs-us", 500.0f64),
        ..DiffOptions::default()
    };
    let d = diff(&a, &b, &opts);
    print!("{}", d.render());
    if flags.has("fail-on-regress") && !d.pass() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_diff_bench(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    let pos = flags.positional();
    let [a_path, b_path] = pos.as_slice() else {
        eprintln!("obs diff-bench: need exactly two bench JSON paths");
        return ExitCode::FAILURE;
    };
    let Some(spec) = flags.get("keys") else {
        eprintln!("obs diff-bench: --keys path:up,path:down,... is required");
        return ExitCode::FAILURE;
    };
    let mut keys: Vec<(&str, Direction)> = Vec::new();
    for entry in spec.split(',').filter(|e| !e.is_empty()) {
        let Some((path, dir)) = entry.rsplit_once(':') else {
            eprintln!("obs diff-bench: key {entry:?} needs a :up or :down suffix");
            return ExitCode::FAILURE;
        };
        let Some(dir) = Direction::parse(dir) else {
            eprintln!("obs diff-bench: key {entry:?}: direction must be up or down");
            return ExitCode::FAILURE;
        };
        keys.push((path, dir));
    }
    if keys.is_empty() {
        eprintln!("obs diff-bench: --keys spec selected no keys");
        return ExitCode::FAILURE;
    }
    let parse = |path: &str| -> Result<jsonv::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        jsonv::parse(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let (a, b) = match (parse(a_path), parse(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs diff-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = DiffOptions {
        rel: flags.num("rel", 10.0f64) / 100.0,
        ..DiffOptions::default()
    };
    let d = diff_bench(&a, &b, &opts, &keys);
    print!("{}", d.render());
    if flags.has("fail-on-regress") && !d.pass() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_attribute(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    let pos = flags.positional();
    let [path] = pos.as_slice() else {
        eprintln!("obs attribute: need exactly one JSONL dump path");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs attribute: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match stellaris_obs::attribute_jsonl(&text) {
        Ok(attr) => {
            print!("{}", attr.render_table());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs attribute: {e}");
            ExitCode::FAILURE
        }
    }
}
