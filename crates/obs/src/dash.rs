//! The plain-text live dashboard: renders a snapshot of the global
//! metrics registry as a small fixed-width panel. Pure string rendering —
//! the `obs` binary owns the printing loop (lint rule L5 keeps stdout/err
//! out of library code).

use std::sync::Arc;

use stellaris_telemetry::{global, Counter, Gauge, Histogram};

/// Cached handles into the global registry for the metrics the panel
/// shows. Handles are get-or-create: a metric the run never touches just
/// renders as zero.
pub struct Dashboard {
    rounds: Arc<Counter>,
    degraded: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    enqueued: Arc<Counter>,
    dequeued: Arc<Counter>,
    staleness: Arc<Histogram>,
    gate_admitted: Arc<Counter>,
    gate_delayed: Arc<Counter>,
    faults: Arc<Counter>,
    retries: Arc<Counter>,
    exhausted: Arc<Counter>,
    dropped: Arc<Counter>,
}

impl Default for Dashboard {
    fn default() -> Self {
        Self::new()
    }
}

impl Dashboard {
    /// Resolves the panel's instrument handles from the global registry.
    pub fn new() -> Self {
        let r = global();
        Dashboard {
            rounds: r.counter("stellaris_core_rounds_total"),
            degraded: r.counter("stellaris_core_degraded_rounds"),
            queue_depth: r.gauge("stellaris_cache_queue_depth"),
            enqueued: r.counter("stellaris_cache_queue_enqueued_total"),
            dequeued: r.counter("stellaris_cache_queue_dequeued_total"),
            staleness: r.histogram("stellaris_core_staleness"),
            gate_admitted: r.counter("stellaris_core_gate_admitted_total"),
            gate_delayed: r.counter("stellaris_core_gate_delayed_total"),
            faults: r.counter("stellaris_serverless_faults_injected_total"),
            retries: r.counter("stellaris_serverless_retries_total"),
            exhausted: r.counter("stellaris_serverless_retries_exhausted_total"),
            dropped: r.counter("stellaris_telemetry_dropped_events_total"),
        }
    }

    /// Renders the current panel (a handful of lines, no ANSI control
    /// codes, safe for dumb terminals and CI logs).
    pub fn render(&self) -> String {
        let p50 = self.staleness.p50().unwrap_or(0.0);
        let p99 = self.staleness.p99().unwrap_or(0.0);
        format!(
            "rounds {:>6}  degraded {:>4} | queue depth {:>5} (in {} / out {}) | \
             staleness p50 {:.1} p99 {:.1} (gate ok {} delayed {}) | \
             faults {:>4} retries {:>4} exhausted {:>3} | trace drops {}",
            self.rounds.get(),
            self.degraded.get(),
            self.queue_depth.get() as i64,
            self.enqueued.get(),
            self.dequeued.get(),
            p50,
            p99,
            self.gate_admitted.get(),
            self.gate_delayed.get(),
            self.faults.get(),
            self.retries.get(),
            self.exhausted.get(),
            self.dropped.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_without_any_recorded_metrics() {
        // Cold registry: every handle resolves, everything reads zero.
        let d = Dashboard::new();
        let line = d.render();
        assert!(line.contains("rounds"));
        assert!(line.contains("staleness p50 0.0"));
        assert!(line.contains("trace drops 0"));
    }
}
