//! The five Stellaris invariant rules and the `lint:allow` escape hatch.
//!
//! | id | name             | guards                                            |
//! |----|------------------|---------------------------------------------------|
//! | L1 | panic-freedom    | no `unwrap()`/`expect()`/`panic!` in library code |
//! | L2 | determinism      | no ambient RNG or wall-clock in deterministic code|
//! | L3 | lock-discipline  | no guard held across send/recv or a second lock   |
//! | L4 | lossy-cast       | no `as f32`/`as f64` in gradient/staleness math   |
//! | L5 | print-discipline | no `println!`-family macros in library code       |
//! | L6 | grad-alloc-discipline | no `.clone()` inside backward closures       |
//!
//! Any diagnostic can be suppressed with a justified comment on the same
//! line or the line above:
//!
//! ```text
//! // lint:allow(L1): join() only errs if the wave panicked, which aborts anyway
//! ```
//!
//! An allow without a justification is itself a diagnostic.
//!
//! Source parsing (masking, statement spans, `lint:allow` extraction) is
//! shared with `stellaris-analyze`, whose rule registry also covers the
//! analyzer's A1–A3 — so `lint:allow(A2)` in a file is a valid suppression
//! for the analyzer, not an unknown-rule error here.

use std::fmt;

use stellaris_analyze::source::{
    boundary_ok, canonical_rule, find_token, parse_allows, statement_spans, Allows, SourceFile,
};

/// A lint rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No `unwrap()`/`expect()`/`panic!` in non-test library code.
    L1,
    /// No ambient nondeterminism in deterministic crates.
    L2,
    /// No lock guard held across a channel op or second lock.
    L3,
    /// No lossy `as` float casts in gradient/staleness math.
    L4,
    /// No `println!`/`eprintln!`/`dbg!` in non-test, non-bin library code;
    /// route output through telemetry events or the bench `progress!` helper.
    L5,
    /// No `.clone()` inside the graph's boxed backward closures: gradients
    /// must accumulate into the recycled arena (`GradSink`), not fresh
    /// tensors. Scoped to `crates/nn/src/graph.rs` so the allocation-free
    /// backward pass survives future edits.
    L6,
}

impl Rule {
    /// Short id, e.g. `L1`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "panic-freedom",
            Rule::L2 => "determinism",
            Rule::L3 => "lock-discipline",
            Rule::L4 => "lossy-cast",
            Rule::L5 => "print-discipline",
            Rule::L6 => "grad-alloc-discipline",
        }
    }

    /// Parses `L1` / `panic-freedom` style spellings via the shared registry.
    pub fn parse(s: &str) -> Option<Rule> {
        match canonical_rule(s)? {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            "L6" => Some(Rule::L6),
            _ => None, // analyzer rules (A1–A3) are not lint rules
        }
    }
}

/// Which rules run on a given file.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// Run L1 (panic-freedom).
    pub l1: bool,
    /// Run L2 (determinism).
    pub l2: bool,
    /// Run L3 (lock-discipline).
    pub l3: bool,
    /// Run L4 (lossy-cast).
    pub l4: bool,
    /// Run L5 (print-discipline).
    pub l5: bool,
    /// Run L6 (grad-alloc-discipline).
    pub l6: bool,
}

impl RuleSet {
    /// All six rules.
    pub fn all() -> Self {
        Self {
            l1: true,
            l2: true,
            l3: true,
            l4: true,
            l5: true,
            l6: true,
        }
    }

    /// No rules (useful as a base).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when at least one rule is enabled.
    pub fn any(self) -> bool {
        self.l1 || self.l2 || self.l3 || self.l4 || self.l5 || self.l6
    }
}

/// One finding, pointing at `file:line`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Violated rule.
    pub rule: Rule,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} ({}): {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

/// Whether `rule` is suppressed at `line` (same line or line above).
fn suppressed(allows: &Allows, rule: Rule, line: usize) -> bool {
    allows.suppressed(rule.id(), line)
}

/// Lints one file's text under the given rule set. `file` is the label used
/// in diagnostics (typically the repo-relative path).
pub fn lint_text(file: &str, text: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let src = SourceFile::parse(text);
    let allows = parse_allows(&src);
    let mut out = Vec::new();

    for (line, msg) in &allows.errors {
        out.push(Diagnostic {
            rule: Rule::L1, // allow-syntax errors are reported under L1's banner
            file: file.to_string(),
            line: *line,
            message: msg.clone(),
        });
    }

    if rules.l1 {
        check_tokens(
            file,
            &src,
            &allows,
            Rule::L1,
            &[
                (
                    ".unwrap()",
                    "`.unwrap()` in library code; return a Result or justify",
                ),
                (
                    ".expect(",
                    "`.expect(..)` in library code; return a Result or justify",
                ),
                (
                    "panic!",
                    "`panic!` in library code; return an error or justify",
                ),
            ],
            &mut out,
        );
    }
    if rules.l2 {
        check_tokens(
            file,
            &src,
            &allows,
            Rule::L2,
            &[
                (
                    "thread_rng",
                    "ambient `thread_rng()`; use a config-seeded ChaCha8Rng",
                ),
                (
                    "from_entropy",
                    "entropy-seeded RNG; use a config-seeded ChaCha8Rng",
                ),
                (
                    "rand::random",
                    "ambient `rand::random`; use a config-seeded ChaCha8Rng",
                ),
                (
                    "SystemTime::now()",
                    "wall-clock read in deterministic code; inject a clock",
                ),
                (
                    "Instant::now()",
                    "monotonic-clock read in deterministic code; inject a clock",
                ),
            ],
            &mut out,
        );
    }
    if rules.l3 {
        check_lock_discipline(file, &src, &allows, &mut out);
    }
    if rules.l6 {
        check_grad_alloc_discipline(file, &src, &allows, &mut out);
    }
    if rules.l4 {
        check_tokens(
            file,
            &src,
            &allows,
            Rule::L4,
            &[
                (
                    "as f32",
                    "lossy `as f32` cast in numeric-critical code; justify exactness",
                ),
                (
                    "as f64",
                    "lossy `as f64` cast in numeric-critical code; justify exactness",
                ),
            ],
            &mut out,
        );
    }
    if rules.l5 {
        check_tokens(
            file,
            &src,
            &allows,
            Rule::L5,
            &[
                (
                    "println!",
                    "`println!` in library code; emit a telemetry event or use `progress!`",
                ),
                (
                    "eprintln!",
                    "`eprintln!` in library code; emit a telemetry event or use `progress!`",
                ),
                (
                    "print!",
                    "`print!` in library code; emit a telemetry event or use `progress!`",
                ),
                (
                    "eprint!",
                    "`eprint!` in library code; emit a telemetry event or use `progress!`",
                ),
                (
                    "dbg!",
                    "`dbg!` left in library code; remove it or trace via telemetry",
                ),
            ],
            &mut out,
        );
    }

    out.sort_by(|a, b| (a.line, a.rule.id()).cmp(&(b.line, b.rule.id())));
    out
}

fn check_tokens(
    file: &str,
    src: &SourceFile,
    allows: &Allows,
    rule: Rule,
    tokens: &[(&str, &str)],
    out: &mut Vec<Diagnostic>,
) {
    for &(token, message) in tokens {
        for at in find_token(&src.masked, token) {
            if !boundary_ok(&src.masked, at, token) || src.in_test(at) {
                continue;
            }
            let line = src.line_of(at);
            if suppressed(allows, rule, line) {
                continue;
            }
            out.push(Diagnostic {
                rule,
                file: file.to_string(),
                line,
                message: message.to_string(),
            });
        }
    }
}

/// L6: `.clone()` inside a boxed backward closure (`Box::new(move |...| …)`)
/// allocates a fresh tensor per gradient contribution — exactly the churn the
/// recycled gradient arena removed. Contributions must go through `GradSink`
/// (`sink.with`/`sink.add`), or carry a justified `lint:allow(L6)`.
fn check_grad_alloc_discipline(
    file: &str,
    src: &SourceFile,
    allows: &Allows,
    out: &mut Vec<Diagnostic>,
) {
    for at in find_token(&src.masked, "Box::new(") {
        if src.in_test(at) {
            continue;
        }
        // Walk the balanced parens to find the closure body's extent.
        let open = at + "Box::new".len();
        let mut depth = 0usize;
        let mut end = src.masked.len();
        for (i, b) in src.masked.bytes().enumerate().skip(open) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let region = &src.masked[open..end];
        if !region.contains("move |") {
            continue;
        }
        for hit in find_token(region, ".clone()") {
            let line = src.line_of(open + hit);
            if suppressed(allows, Rule::L6, line) {
                continue;
            }
            out.push(Diagnostic {
                rule: Rule::L6,
                file: file.to_string(),
                line,
                message: "`.clone()` inside a backward closure; accumulate into the gradient \
                          arena via GradSink or justify"
                    .to_string(),
            });
        }
    }
}

const LOCK_TOKENS: [&str; 3] = [".lock()", ".read()", ".write()"];
const CHANNEL_TOKENS: [&str; 3] = [".send(", ".recv()", ".recv_timeout("];

fn check_lock_discipline(file: &str, src: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    for (start, end) in statement_spans(&src.masked) {
        let span = &src.masked[start..end];
        let mut locks: Vec<usize> = Vec::new();
        let mut chans: Vec<usize> = Vec::new();
        for token in LOCK_TOKENS {
            locks.extend(find_token(span, token).into_iter().map(|at| start + at));
        }
        for token in CHANNEL_TOKENS {
            chans.extend(find_token(span, token).into_iter().map(|at| start + at));
        }
        locks.retain(|&at| !src.in_test(at));
        chans.retain(|&at| !src.in_test(at));
        if locks.is_empty() {
            continue;
        }
        locks.sort_unstable();
        if locks.len() >= 2 {
            let at = locks[1];
            let line = src.line_of(at);
            if !suppressed(allows, Rule::L3, line) {
                out.push(Diagnostic {
                    rule: Rule::L3,
                    file: file.to_string(),
                    line,
                    message: "second lock acquired while a guard from the same expression is \
                              still live; split the statement or justify"
                        .to_string(),
                });
            }
        }
        if !chans.is_empty() {
            let at = *chans.iter().min().expect("nonempty");
            let line = src.line_of(at);
            if !suppressed(allows, Rule::L3, line) {
                out.push(Diagnostic {
                    rule: Rule::L3,
                    file: file.to_string(),
                    line,
                    message: "channel send/recv in the same expression as a live lock guard; \
                              drop the guard first or justify"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_all(text: &str) -> Vec<Diagnostic> {
        lint_text("test.rs", text, RuleSet::all())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn l1_flags_unwrap_expect_panic() {
        let d = lint_all("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"z\"); }");
        assert_eq!(rules_of(&d), ["L1", "L1", "L1"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn l1_ignores_unwrap_or_family() {
        let d =
            lint_all("fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l1_ignores_test_code_and_comments_and_strings() {
        let src = r#"
// a comment mentioning panic! and x.unwrap()
fn f() { let s = "panic!"; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); panic!("fine in tests"); }
}
"#;
        assert!(lint_all(src).is_empty());
    }

    #[test]
    fn l2_flags_ambient_nondeterminism() {
        let d =
            lint_all("fn f() { let r = rand::thread_rng(); let t = std::time::Instant::now(); }");
        assert_eq!(rules_of(&d), ["L2", "L2"]);
    }

    #[test]
    fn l2_allows_seeded_and_injected() {
        let d = lint_all(
            "fn f(clock: &dyn Clock) { let r = ChaCha8Rng::seed_from_u64(7); let t = clock.now(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l3_flags_double_lock_in_one_expression() {
        let d = lint_all("fn f() { a.lock().merge(b.lock()); }");
        assert_eq!(rules_of(&d), ["L3"]);
    }

    #[test]
    fn l3_flags_send_under_guard() {
        let d = lint_all("fn f() { tx.send(state.lock().snapshot()); }");
        assert_eq!(rules_of(&d), ["L3"]);
    }

    #[test]
    fn l3_accepts_sequential_locks() {
        let d = lint_all("fn f() { let a = m1.lock(); drop(a); let b = m2.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l3_accepts_locks_in_separate_match_arms() {
        let d = lint_all("fn f() { match x { A => a.lock().v(), B => b.lock().w(), } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l4_flags_float_casts() {
        let d = lint_all("fn f(n: u64) -> f32 { n as f32 + (n as f64) as f32 }");
        assert_eq!(rules_of(&d), ["L4", "L4", "L4"]);
    }

    #[test]
    fn l5_flags_print_macros() {
        let d = lint_all("fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(z); }");
        assert_eq!(rules_of(&d), ["L5", "L5", "L5"]);
    }

    #[test]
    fn l5_does_not_cross_match_print_families() {
        // `println!` must not also fire the `print!` token, nor `eprintln!`
        // the `println!` token.
        let d = lint_all("fn f() { println!(\"x\"); }");
        assert_eq!(d.len(), 1, "{d:?}");
        let d = lint_all("fn f() { eprintln!(\"x\"); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn l5_allows_with_justification_and_test_code() {
        let d = lint_all(
            "fn f() {\n    // lint:allow(L5): stdout is this binary's data channel\n    println!(\"csv\");\n}",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = lint_all(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l6_flags_clone_in_backward_closure() {
        let src = "fn op(g: &Graph) {\n    g.push(\n        out,\n        Box::new(move |grad: &Tensor, sink: &mut GradSink| {\n            let t = grad.clone();\n            sink.add(a, t);\n        }),\n    );\n}";
        let d = lint_all(src);
        assert_eq!(rules_of(&d), ["L6"], "{d:?}");
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn l6_ignores_clone_outside_closures_and_non_move_boxes() {
        // Clones on the forward path (outside `Box::new(move |..)`) are the
        // tape's business, not L6's; a boxed non-closure is out of scope too.
        let src = "fn op(g: &Graph) {\n    let v = value.clone();\n    let b = Box::new(v.clone());\n    g.push(out, Box::new(move |grad, sink| sink.add(a, grad)));\n}";
        let d = lint_all(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l6_allows_with_justification_and_test_code() {
        let src = "fn op(g: &Graph) {\n    g.push(out, Box::new(move |grad, sink| {\n        // lint:allow(L6): reshape must materialise the source shape once\n        let t = grad.clone();\n        sink.add(a, t);\n    }));\n}";
        assert!(lint_all(src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let b = Box::new(move |g| g.clone()); }\n}";
        assert!(lint_all(src).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses_same_line() {
        let d =
            lint_all("fn f() { x.unwrap(); } // lint:allow(L1): invariant: x was just inserted");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_with_justification_suppresses_next_line() {
        let src = "// lint:allow(L4): delta is bounded by cfg.rounds << 2^24\nfn f(n: u64) -> f32 { n as f32 }";
        assert!(lint_all(src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_an_error() {
        let d = lint_all("fn f() { x.unwrap(); } // lint:allow(L1)");
        assert!(
            d.iter()
                .any(|d| d.message.contains("requires a justification")),
            "{d:?}"
        );
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let d = lint_all("fn f() { x.unwrap(); } // lint:allow(L2): not the right rule");
        assert_eq!(rules_of(&d), ["L1"]);
    }

    #[test]
    fn allow_accepts_rule_names() {
        let d = lint_all(
            "fn f() { x.unwrap(); } // lint:allow(panic-freedom): checked two lines above",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let d = lint_all("fn f() {} // lint:allow(L9): nope");
        assert!(d.iter().any(|d| d.message.contains("unknown lint rule")));
    }

    #[test]
    fn analyzer_rule_allows_are_not_unknown_here() {
        // `lint:allow(A2)` is the analyzer's suppression; the linter must
        // parse it (shared registry) without flagging it or suppressing
        // anything of its own.
        let d = lint_all("fn f() { x.unwrap(); } // lint:allow(A2): guard is released by wait()");
        assert_eq!(rules_of(&d), ["L1"], "{d:?}");
    }

    #[test]
    fn rule_parse_rejects_analyzer_rules() {
        assert_eq!(Rule::parse("held-guard"), None);
        assert_eq!(Rule::parse("A1"), None);
        assert_eq!(Rule::parse("l3"), Some(Rule::L3));
    }

    #[test]
    fn rule_set_gates_rules() {
        let only_l1 = RuleSet {
            l1: true,
            ..RuleSet::none()
        };
        let d = lint_text(
            "t.rs",
            "fn f(n: u64) -> f32 { thread_rng(); n as f32 }",
            only_l1,
        );
        assert!(d.is_empty(), "L2/L4 disabled: {d:?}");
    }

    #[test]
    fn diagnostics_point_at_lines() {
        let src = "fn a() {}\nfn b() { x.unwrap(); }\n";
        let d = lint_all(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        let shown = d[0].to_string();
        assert!(shown.starts_with("test.rs:2: L1"), "{shown}");
    }
}
