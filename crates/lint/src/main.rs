//! CLI for the Stellaris invariant linter.
//!
//! ```text
//! cargo run -p stellaris-lint            # lint the enclosing workspace
//! cargo run -p stellaris-lint -- <root>  # lint an explicit tree
//! ```
//!
//! Prints one `file:line: rule: message` diagnostic per violation and exits
//! nonzero when any are found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match stellaris_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "stellaris-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match stellaris_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stellaris-lint: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if diags.is_empty() {
        println!(
            "stellaris-lint: clean ({} rules over {})",
            5,
            root.display()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("stellaris-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}
