//! CLI for the Stellaris invariant linter.
//!
//! ```text
//! cargo run -p stellaris-lint                       # lint the workspace
//! cargo run -p stellaris-lint -- <root>             # lint an explicit tree
//! cargo run -p stellaris-lint -- --baseline known   # ignore known findings
//! cargo run -p stellaris-lint -- --write-baseline known
//! ```
//!
//! Prints one `file:line: rule: message` diagnostic per violation and exits
//! nonzero when any non-baselined violations are found.

use std::path::PathBuf;
use std::process::ExitCode;

use stellaris_analyze::baseline::{render_baseline, Baseline};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--write-baseline" => match it.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage_error("--write-baseline needs a value"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag `{other}`"));
            }
            other => {
                if root.is_some() {
                    return usage_error("more than one root given");
                }
                root = Some(PathBuf::from(other));
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match stellaris_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "stellaris-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut diags = match stellaris_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stellaris-lint: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &write_baseline {
        let text = render_baseline(
            diags
                .iter()
                .map(|d| (d.rule.id(), d.file.as_str(), d.message.as_str())),
        );
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("stellaris-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "stellaris-lint: wrote baseline with {} entr{} to {}",
            diags.len(),
            if diags.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("stellaris-lint: failed to read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut base = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("stellaris-lint: {}: {msg}", path.display());
                return ExitCode::from(2);
            }
        };
        diags.retain(|d| !base.take(d.rule.id(), &d.file, &d.message));
        for stale in base.stale() {
            eprintln!(
                "stellaris-lint: stale baseline entry (no longer reported): {}\t{}\t{}",
                stale.rule, stale.file, stale.message
            );
        }
    }

    if diags.is_empty() {
        println!(
            "stellaris-lint: clean ({} rules over {})",
            6,
            root.display()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("stellaris-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("stellaris-lint: {msg}");
    eprintln!("usage: stellaris-lint [root] [--baseline FILE] [--write-baseline FILE]");
    ExitCode::from(2)
}
