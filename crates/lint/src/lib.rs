//! `stellaris-lint`: repo-specific invariant linter for the Stellaris
//! workspace.
//!
//! Six rules (see [`rules`]): panic-freedom (L1), determinism (L2),
//! lock-discipline (L3), lossy-cast (L4), print-discipline (L5), and
//! grad-alloc-discipline (L6). Rules are scoped per file by
//! [`rules_for`]; violations carry `file:line` and can be suppressed with a
//! justified `// lint:allow(<rule>): <why>` comment.
//!
//! Source parsing (comment/string masking, statement spans, test-region
//! detection, `lint:allow` extraction) is shared with `stellaris-analyze` —
//! see [`stellaris_analyze::source`] — so the linter and the concurrency
//! analyzer always agree on what the code says.
//!
//! Run as a binary (`cargo run -p stellaris-lint`) for CI, or through
//! [`lint_workspace`] from the test suite so `cargo test` enforces the
//! invariants too.

mod rules;

pub use rules::{lint_text, Diagnostic, Rule, RuleSet};
pub use stellaris_analyze::source::SourceFile;
pub use stellaris_analyze::{collect_rs_files, find_workspace_root};

use std::io;
use std::path::Path;

/// Library crates that must be panic-free (L1) outside tests.
const L1_CRATES: [&str; 7] = [
    "crates/cache/src/",
    "crates/core/src/",
    "crates/nn/src/",
    "crates/rl/src/",
    "crates/serverless/src/",
    "crates/simcluster/src/",
    "crates/telemetry/src/",
];

/// Deterministic code: math must not read ambient RNGs or clocks (L2).
const L2_SCOPES: [&str; 6] = [
    "crates/nn/src/",
    "crates/rl/src/",
    "crates/core/src/aggregation.rs",
    "crates/core/src/truncation.rs",
    "crates/core/src/staleness.rs",
    "crates/core/src/parameter.rs",
];

/// Gradient/staleness math where `as` float casts need justification (L4).
const L4_MODULES: [&str; 7] = [
    "crates/core/src/staleness.rs",
    "crates/core/src/truncation.rs",
    "crates/core/src/parameter.rs",
    "crates/nn/src/optim.rs",
    "crates/rl/src/gae.rs",
    "crates/rl/src/vtrace.rs",
    "crates/rl/src/ppo.rs",
];

/// Decides which rules apply to a repo-relative path (forward slashes).
pub fn rules_for(rel: &str) -> RuleSet {
    if !rel.ends_with(".rs") {
        return RuleSet::none();
    }
    // Vendored stand-ins for registry crates and non-library code are out of
    // scope; test/bench/example trees are covered by their own review bar.
    let excluded = rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/");
    if excluded {
        return RuleSet::none();
    }
    let in_workspace_src =
        rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    if !in_workspace_src {
        return RuleSet::none();
    }
    // Binary entry points (CLI, figure harnesses, the lint runner) own their
    // stdout/stderr; library code must route output through telemetry.
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs") || rel == "src/main.rs";
    RuleSet {
        l1: L1_CRATES.iter().any(|p| rel.starts_with(p)),
        l2: L2_SCOPES.iter().any(|p| rel.starts_with(p)),
        // Lock discipline holds everywhere in first-party sources,
        // including the CLI and this linter itself.
        l3: true,
        l4: L4_MODULES.contains(&rel),
        l5: !is_bin,
        // The allocation-free backward pass lives (and must stay) in the
        // graph tape; everywhere else `.clone()` is ordinary Rust.
        l6: rel == "crates/nn/src/graph.rs",
    }
}

/// Lints every first-party source file under `root`. Diagnostics come back
/// sorted by path and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let rules = rules_for(&rel);
        if !rules.any() {
            continue;
        }
        let text = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_text(&rel, &text, rules));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_matches_policy() {
        let r = rules_for("crates/core/src/aggregation.rs");
        assert!(r.l1 && r.l2 && r.l3 && !r.l4 && r.l5);
        let r = rules_for("crates/core/src/staleness.rs");
        assert!(r.l1 && r.l2 && r.l3 && r.l4);
        let r = rules_for("crates/envs/src/mujoco.rs");
        assert!(!r.l1 && !r.l2 && r.l3, "envs: lock discipline only");
        let r = rules_for("src/main.rs");
        assert!(!r.l1 && r.l3 && !r.l5, "CLI may panic and print");
        let r = rules_for("crates/telemetry/src/trace.rs");
        assert!(r.l1 && r.l5, "telemetry is panic-free, print-free library");
    }

    #[test]
    fn l6_is_scoped_to_the_graph_tape() {
        assert!(rules_for("crates/nn/src/graph.rs").l6);
        assert!(!rules_for("crates/nn/src/tensor.rs").l6);
        assert!(!rules_for("crates/rl/src/learner.rs").l6);
    }

    #[test]
    fn bins_are_exempt_from_print_discipline() {
        assert!(!rules_for("crates/bench/src/bin/fig6_ppo.rs").l5);
        assert!(!rules_for("crates/lint/src/main.rs").l5);
        assert!(rules_for("crates/bench/src/lib.rs").l5);
        // `domain.rs` must not be mistaken for `main.rs`.
        assert!(rules_for("crates/core/src/domain.rs").l5);
    }

    #[test]
    fn out_of_scope_paths_get_no_rules() {
        for rel in [
            "vendor/rand/src/lib.rs",
            "tests/train_e2e.rs",
            "crates/bench/benches/aggregation.rs",
            "examples/custom_env.rs",
            "crates/cache/src/notes.md",
            "target/debug/build/foo.rs",
        ] {
            assert!(!rules_for(rel).any(), "{rel} must be unscoped");
        }
    }

    #[test]
    fn lint_crate_is_in_l3_scope_but_not_l1() {
        let r = rules_for("crates/lint/src/rules.rs");
        assert!(!r.l1 && r.l3);
    }

    #[test]
    fn analyze_crate_is_in_l3_scope_but_not_l1() {
        let r = rules_for("crates/analyze/src/model.rs");
        assert!(!r.l1 && r.l3 && r.l5);
    }
}
