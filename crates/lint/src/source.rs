//! Lexical preprocessing for the linter: comment/string masking, test-region
//! detection, and statement spans.
//!
//! The linter is token-based rather than AST-based (the build environment
//! has no registry access for `syn`), so every rule runs over a *masked*
//! view of the file in which comments and string/char literals are replaced
//! by spaces. Token searches therefore never match inside literals or
//! docs, and byte offsets in the masked text line up exactly with the
//! original source.

/// A preprocessed source file.
pub struct SourceFile {
    /// Original text, for extracting `lint:allow` comments.
    pub text: String,
    /// Same length as `text`, with comments and string/char literal
    /// contents replaced by spaces (newlines preserved).
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// For each line (0-based), whether it falls inside `#[cfg(test)]` /
    /// `#[test]` code.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Preprocesses `text`.
    pub fn parse(text: &str) -> Self {
        let masked = mask(text);
        let line_starts = line_starts(text);
        let test_lines = test_regions(&masked, &line_starts);
        Self {
            text: text.to_string(),
            masked,
            line_starts,
            test_lines,
        }
    }

    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether byte `offset` is inside a test region.
    pub fn in_test(&self, offset: usize) -> bool {
        let line = self.line_of(offset);
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The original text of 1-based line `line` (without trailing newline).
    pub fn line_text(&self, line: usize) -> &str {
        let (start, end) = self.line_span(line);
        self.text[start..end].trim_end_matches(['\n', '\r'])
    }

    /// The line-comment text (`// ...` onward) of 1-based line `line`, if
    /// the line carries a *real* comment — `//` in masked text means the
    /// marker is not inside a string literal. Doc comments (`///`, `//!`)
    /// are documentation, not directives, and return `None`.
    pub fn comment_text(&self, line: usize) -> Option<&str> {
        let (start, end) = self.line_span(line);
        let masked_line = &self.masked[start..end];
        let at = masked_line.find("//")?;
        let comment = self.text[start + at..end].trim_end_matches(['\n', '\r']);
        if comment.starts_with("///") || comment.starts_with("//!") {
            return None;
        }
        Some(comment)
    }

    fn line_span(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|e| e - 1)
            .unwrap_or(self.text.len());
        (start, end.max(start))
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' && i + 1 < text.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// Replaces comments and string/char literal contents with spaces.
fn mask(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let n = bytes.len();
    let mut i = 0;
    let mut prev_ident = false; // previous emitted byte was an identifier char

    while i < n {
        let c = bytes[i];
        match c {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                // Keep the `//` marker so allow-comment parsing can locate
                // real comments in the masked view; mask the body.
                out[i] = b'/';
                out[i + 1] = b'/';
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                prev_ident = false;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    if i + 1 < n && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                prev_ident = false;
            }
            b'r' | b'b' if !prev_ident => {
                // Possible raw/byte string prefix: r", r#", br", b", b'.
                let mut j = i + 1;
                if c == b'b' && j < n && bytes[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                while j < n && bytes[j] == b'#' && (bytes[i] == b'r' || bytes[i + 1] == b'r') {
                    hashes += 1;
                    j += 1;
                }
                if j < n && bytes[j] == b'"' && (hashes > 0 || bytes[j - 1] == b'r') {
                    // Raw (byte) string: ends at `"` followed by `hashes` #s.
                    i = skip_raw_string(bytes, &mut out, j, hashes);
                    prev_ident = false;
                    continue;
                }
                if c == b'b' && i + 1 < n && bytes[i + 1] == b'"' {
                    out[i] = c;
                    i = skip_string(bytes, &mut out, i + 1);
                    prev_ident = false;
                    continue;
                }
                if c == b'b' && i + 1 < n && bytes[i + 1] == b'\'' {
                    out[i] = c;
                    i = skip_char(bytes, &mut out, i + 1);
                    prev_ident = false;
                    continue;
                }
                out[i] = c;
                prev_ident = true;
                i += 1;
            }
            b'"' => {
                i = skip_string(bytes, &mut out, i);
                prev_ident = false;
            }
            b'\'' => {
                // Char literal vs lifetime.
                if is_char_literal(bytes, i) {
                    i = skip_char(bytes, &mut out, i);
                } else {
                    out[i] = c;
                    i += 1;
                }
                prev_ident = false;
            }
            _ => {
                out[i] = c;
                prev_ident = c == b'_' || c.is_ascii_alphanumeric();
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking preserves UTF-8: non-ASCII only inside masked spans")
}

fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    // 'x' or '\..'; a lifetime is 'ident NOT closed by a quote.
    let n = bytes.len();
    if i + 1 >= n {
        return false;
    }
    if bytes[i + 1] == b'\\' {
        return true;
    }
    // Multi-byte UTF-8 scalar, e.g. 'é': not a lifetime either way.
    if bytes[i + 1] >= 0x80 {
        return true;
    }
    let ident_start = bytes[i + 1] == b'_' || bytes[i + 1].is_ascii_alphabetic();
    if !ident_start {
        // e.g. '3', ' ', '(' — chars, or stray quote; treat as literal.
        return i + 2 < n && bytes[i + 2] == b'\'';
    }
    // 'a' (char) iff closed immediately; 'a.. / 'static are lifetimes.
    i + 2 < n && bytes[i + 2] == b'\''
}

fn skip_string(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    // start points at the opening quote.
    out[start] = b'"';
    let n = bytes.len();
    let mut i = start + 1;
    while i < n {
        match bytes[i] {
            b'\\' => {
                i += 2;
            }
            b'"' => {
                out[i] = b'"';
                return i + 1;
            }
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_string(bytes: &[u8], out: &mut [u8], quote: usize, hashes: usize) -> usize {
    out[quote] = b'"';
    let n = bytes.len();
    let mut i = quote + 1;
    while i < n {
        if bytes[i] == b'\n' {
            out[i] = b'\n';
        }
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                out[i] = b'"';
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

fn skip_char(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    out[start] = b'\'';
    let n = bytes.len();
    let mut i = start + 1;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                out[i] = b'\'';
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Marks lines covered by `#[cfg(test)]` items and `#[test]` functions.
fn test_regions(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(attr) {
            let at = from + pos;
            from = at + attr.len();
            // Scan forward for the item's opening brace; a `;` first means
            // the attribute decorates a braceless item (e.g. `use`).
            let mut i = at + attr.len();
            let mut open = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        open = Some(i);
                        break;
                    }
                    b';' => break,
                    _ => i += 1,
                }
            }
            let Some(open) = open else { continue };
            let close = match_brace(bytes, open);
            let first = line_of(line_starts, at);
            let last = line_of(line_starts, close.min(bytes.len().saturating_sub(1)));
            for line in first..=last {
                if let Some(f) = flags.get_mut(line - 1) {
                    *f = true;
                }
            }
        }
    }
    flags
}

/// Byte offset of the `}` matching the `{` at `open` (or EOF).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Splits the masked text into expression-level statement spans for the
/// lock-discipline rule. Boundaries: `;`, `{`, `}`, `=>`, and commas at
/// top-level paren/bracket depth relative to the span start (so match arms
/// separate, but arguments of one call — where temporaries coexist — do
/// not).
pub fn statement_spans(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut depth = 0i64;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' | b'{' | b'}' => {
                spans.push((start, i));
                start = i + 1;
                depth = 0;
            }
            b',' if depth <= 0 => {
                spans.push((start, i));
                start = i + 1;
            }
            b'=' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                spans.push((start, i));
                start = i + 2;
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < bytes.len() {
        spans.push((start, bytes.len()));
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let a = 1; // unwrap()\nlet b = /* panic! */ 2;\n";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let b ="));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_strings_and_chars_but_not_lifetimes() {
        let src = r#"fn f<'a>(x: &'a str) { let s = "unwrap()"; let c = 'u'; }"#;
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("fn f<'a>(x: &'a str)"));
        assert!(m.contains("let c = '"));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let src = r###"let a = r#"panic!("x")"#; let b = b"unwrap()"; let c = br"expect(";"###;
        let m = mask(src);
        assert!(!m.contains("panic"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("expect"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"unwrap()\""; s.len();"#;
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("s.len();"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner panic! */ still comment */ let x = 1;";
        let m = mask(src);
        assert!(!m.contains("panic"));
        assert!(m.contains("let x = 1;"));
    }

    #[test]
    fn detects_cfg_test_module_region() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.test_lines[0], "prod line not test");
        assert!(f.test_lines[2], "mod tests body is test");
        assert!(f.test_lines[3]);
        assert!(!f.test_lines[5], "after region not test");
    }

    #[test]
    fn detects_test_fn_region() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    boom();\n}\nfn b() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.test_lines[0]);
        assert!(f.test_lines[2]);
        assert!(f.test_lines[3]);
        assert!(!f.test_lines[5]);
    }

    #[test]
    fn cfg_test_on_braceless_item_is_ignored() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { body(); }\n";
        let f = SourceFile::parse(src);
        assert!(
            !f.test_lines[2],
            "fn after cfg(test) use must not be marked"
        );
    }

    #[test]
    fn statement_spans_split_on_arrows_and_semis() {
        let m = "let a = x.lock(); match y { A => p.lock(), B => q.send(r) }".to_string();
        let spans = statement_spans(&m);
        let texts: Vec<&str> = spans.iter().map(|&(s, e)| m[s..e].trim()).collect();
        assert!(texts.contains(&"let a = x.lock()"));
        assert!(texts
            .iter()
            .any(|t| t.contains("p.lock()") && !t.contains("q.send")));
    }

    #[test]
    fn call_arguments_stay_in_one_span() {
        let m = "f(a.lock(), b.recv())".to_string();
        let spans = statement_spans(&m);
        assert!(spans
            .iter()
            .any(|&(s, e)| m[s..e].contains("a.lock()") && m[s..e].contains("b.recv()")));
    }

    #[test]
    fn line_of_is_one_based() {
        let f = SourceFile::parse("a\nb\nc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(4), 3);
        assert_eq!(f.line_count(), 3);
    }
}
