//! Property tests for the lint rules: the masking lexer and the allow
//! escape hatch must behave identically across arbitrary identifier names,
//! literal contents, and justification strings.

use proptest::prelude::*;

use stellaris_lint::{lint_text, RuleSet};

/// An identifier-shaped string from a constrained alphabet.
fn ident_from(seed: &str) -> String {
    let cleaned: String = seed
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
        .take(12)
        .collect();
    format!("v{cleaned}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unwrap_on_any_receiver_is_flagged(name in ".{0,12}") {
        let receiver = ident_from(&name);
        let src = format!("fn f() {{ {receiver}.unwrap(); }}");
        let diags = lint_text("x.rs", &src, RuleSet::all());
        prop_assert_eq!(diags.len(), 1);
        prop_assert_eq!(diags[0].rule.id(), "L1");
    }

    #[test]
    fn tokens_inside_string_literals_never_fire(payload in ".{0,40}") {
        // Whatever the literal contains — including `.unwrap()`, `panic!`,
        // `thread_rng` — masking must hide it from every rule.
        let escaped = payload.replace(['\\', '"'], "");
        let src = format!(
            "fn f() -> String {{ format!(\"{escaped}.unwrap() panic! thread_rng as f32\") }}"
        );
        let diags = lint_text("x.rs", &src, RuleSet::all());
        prop_assert!(diags.is_empty(), "{:?}", diags);
    }

    #[test]
    fn tokens_inside_comments_never_fire(payload in ".{0,40}") {
        let line = payload.replace('\n', " ").replace("lint:allow", "lint allow");
        let src = format!("// {line} .unwrap() panic! Instant::now() as f64\nfn f() {{}}\n");
        let diags = lint_text("x.rs", &src, RuleSet::all());
        prop_assert!(diags.is_empty(), "{:?}", diags);
    }

    #[test]
    fn any_nonempty_justification_suppresses(reason in ".{1,40}") {
        let reason = reason.trim().to_string();
        if reason.is_empty() || reason.contains(')') {
            return Ok(());
        }
        let src = format!("fn f() {{ x.unwrap(); }} // lint:allow(L1): {reason}");
        let diags = lint_text("x.rs", &src, RuleSet::all());
        prop_assert!(diags.is_empty(), "justified allow must suppress: {:?}", diags);
    }

    #[test]
    fn unjustified_allow_never_suppresses(pad in 0usize..8) {
        let spaces = " ".repeat(pad);
        let src = format!("fn f() {{ x.unwrap(); }} // lint:allow(L1){spaces}");
        let diags = lint_text("x.rs", &src, RuleSet::all());
        // Both the violation and the malformed-allow error must surface.
        prop_assert!(diags.iter().any(|d| d.message.contains("unwrap")), "{:?}", diags);
        prop_assert!(
            diags.iter().any(|d| d.message.contains("requires a justification")),
            "{:?}",
            diags
        );
    }

    #[test]
    fn test_code_is_exempt_for_all_rules(name in ".{0,12}") {
        let receiver = ident_from(&name);
        let src = format!(
            "#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        {receiver}.unwrap();\n        panic!(\"x\");\n        let _ = rand::thread_rng();\n        let _ = 3u64 as f32;\n        a.lock().merge(b.lock());\n    }}\n}}\n"
        );
        let diags = lint_text("x.rs", &src, RuleSet::all());
        prop_assert!(diags.is_empty(), "{:?}", diags);
    }

    #[test]
    fn cast_count_matches_occurrences(n in 1usize..6) {
        let body: String = (0..n).map(|i| format!("let _{i} = {i}u64 as f32; ")).collect();
        let src = format!("fn f() {{ {body} }}");
        let diags = lint_text("x.rs", &src, RuleSet::all());
        prop_assert_eq!(diags.len(), n);
        prop_assert!(diags.iter().all(|d| d.rule.id() == "L4"));
    }

    #[test]
    fn double_lock_flagged_regardless_of_names(a in ".{0,10}", b in ".{0,10}") {
        let (ma, mb) = (ident_from(&a), ident_from(&b));
        let src = format!("fn f() {{ {ma}.lock().fold({mb}.lock()); }}");
        let diags = lint_text("x.rs", &src, RuleSet::all());
        prop_assert_eq!(diags.len(), 1, "{:?}", &diags);
        prop_assert_eq!(diags[0].rule.id(), "L3");
    }
}
