//! The linter runs as part of `cargo test`: the workspace must stay clean,
//! and a seeded violation must be caught with a `file:line` diagnostic.

use std::path::PathBuf;

use stellaris_lint::{lint_text, lint_workspace, rules_for, RuleSet};

fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let diags = lint_workspace(&repo_root()).expect("workspace must be readable");
    assert!(
        diags.is_empty(),
        "stellaris-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violation_in_core_module_is_caught() {
    // Simulates the acceptance check: an unwrap added to core::aggregation
    // must produce a nonzero-exit diagnostic with the right file and line.
    let rel = "crates/core/src/aggregation.rs";
    let mut text =
        std::fs::read_to_string(repo_root().join(rel)).expect("aggregation.rs must exist");
    text.push_str("\npub fn seeded() { let _ = std::env::var(\"X\").unwrap(); }\n");
    let seeded_line = text.lines().count();
    let diags = lint_text(rel, &text, rules_for(rel));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].file, rel);
    assert_eq!(diags[0].line, seeded_line);
    assert!(diags[0].to_string().contains("aggregation.rs"));
}

#[test]
fn seeded_nondeterminism_in_deterministic_crate_is_caught() {
    let rel = "crates/nn/src/optim.rs";
    let mut text = std::fs::read_to_string(repo_root().join(rel)).expect("optim.rs must exist");
    text.push_str("\npub fn jitter() -> u64 { rand::thread_rng().next_u64() }\n");
    let diags = lint_text(rel, &text, rules_for(rel));
    assert!(
        diags.iter().any(|d| d.rule.id() == "L2"),
        "thread_rng must trip L2: {diags:?}"
    );
}

#[test]
fn scoping_excludes_vendor_and_tests() {
    assert!(!rules_for("vendor/rand/src/lib.rs").any());
    assert!(!rules_for("tests/train_e2e.rs").any());
    assert!(rules_for("crates/cache/src/queue.rs").any());
}

#[test]
fn ruleset_all_enables_everything() {
    let r = RuleSet::all();
    assert!(r.l1 && r.l2 && r.l3 && r.l4 && r.any());
    assert!(!RuleSet::none().any());
}
