//! # stellaris-simcluster
//!
//! A discrete-event simulator of the Stellaris training pipeline. The
//! laptop-scale experiments in `stellaris-core` run the real system with
//! real threads; this crate complements them by replaying the *paper-scale*
//! configurations (128 actors x 1024 steps, 8 learner slots, 50 rounds —
//! and the 16-GPU/960-core HPC profile) in virtual time, using the exact
//! `AggregationRule`/`StalenessSchedule` logic from `stellaris-core` with
//! tensor math replaced by calibrated service times.
//!
//! Use it for the cost/utilisation/staleness questions that need full
//! scale: Fig. 2(b), Fig. 3(a)/(b) and Fig. 8's economics.

#![warn(missing_docs)]

pub mod profile;
pub mod sim;

pub use profile::TimingProfile;
pub use sim::{simulate, SimBilling, SimConfig, SimResult, SimRound};
