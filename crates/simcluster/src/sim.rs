//! The discrete-event simulation of the Stellaris pipeline.
//!
//! Actors, learner slots and the parameter function are modelled as
//! stations in a queueing network; gradients carry their base policy clock
//! so staleness, the Eq. 3 admission schedule and the aggregation rules are
//! *exactly* the ones from `stellaris-core` — only the tensor arithmetic is
//! replaced by virtual service times. One paper-scale training run (128
//! actors x 1024 steps x 50 rounds) simulates in milliseconds.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stellaris_core::AggregationRule;
use stellaris_serverless::{Cluster, CostBreakdown};

use crate::profile::TimingProfile;

/// Billing model for the simulated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimBilling {
    /// Pay per function-second of actual work.
    Serverless,
    /// Reserve the whole cluster for the whole virtual duration.
    Serverful,
}

/// Simulation configuration (mirrors `TrainConfig`'s scale knobs).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of actors (paper: 128 on the regular testbed).
    pub n_actors: usize,
    /// Timesteps per actor batch (paper: 1024).
    pub actor_steps: usize,
    /// Learner mini-batch size (paper: 4096 MuJoCo / 256 Atari).
    pub minibatch: usize,
    /// Concurrent learner slots (paper: 4 per V100).
    pub max_learners: usize,
    /// Training rounds (paper: 50).
    pub rounds: usize,
    /// Timesteps consumed per round.
    pub round_timesteps: usize,
    /// Aggregation rule (the real `stellaris-core` logic).
    pub rule: AggregationRule,
    /// Synchronous-barrier semantics: the next round's sampling waits for
    /// all learning to finish, and learners bill until their wave completes
    /// (serverful multi-learner baselines).
    pub sync_barrier: bool,
    /// Cluster prices/slots.
    pub cluster: Cluster,
    /// Billing model.
    pub billing: SimBilling,
    /// Operation timings.
    pub timing: TimingProfile,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Parameter-plane shards (DESIGN.md §16). Shards aggregate their block
    /// slices concurrently, so each policy update's critical-path service
    /// time is `aggregate_us / param_shards`; 1 reproduces the classic
    /// single-server timings exactly.
    pub param_shards: usize,
}

impl SimConfig {
    /// Stellaris at the paper's regular-testbed scale on a MuJoCo task.
    pub fn stellaris_paper_mujoco() -> Self {
        let cluster = Cluster::regular();
        Self {
            n_actors: cluster.actor_slots(),
            actor_steps: 1024,
            minibatch: 4096,
            max_learners: cluster.learner_slots(),
            rounds: 50,
            round_timesteps: cluster.actor_slots() * 1024,
            rule: AggregationRule::stellaris_default(),
            sync_barrier: false,
            cluster,
            billing: SimBilling::Serverless,
            timing: TimingProfile::mujoco_v100(),
            seed: 1,
            param_shards: 1,
        }
    }

    /// A scale stress configuration: `n_learners` simulated learner slots
    /// (thousands are fine — the queueing network is O(events), not
    /// O(threads)) fed by a proportionally sized actor pool, short rounds,
    /// small mini-batches so every slot sees work.
    pub fn stellaris_scale(n_learners: usize) -> Self {
        let n_learners = n_learners.max(1);
        Self {
            n_actors: (n_learners / 4).max(4),
            actor_steps: 64,
            minibatch: 32,
            max_learners: n_learners,
            rounds: 3,
            round_timesteps: (n_learners / 4).max(4) * 64,
            timing: TimingProfile::test_flat(),
            seed: 3,
            ..Self::stellaris_paper_mujoco()
        }
    }

    /// The serverful synchronous baseline at the same scale.
    pub fn sync_serverful_paper_mujoco() -> Self {
        let base = Self::stellaris_paper_mujoco();
        Self {
            rule: AggregationRule::FullSync {
                n: base.max_learners,
            },
            sync_barrier: true,
            billing: SimBilling::Serverful,
            ..base
        }
    }

    /// Stellaris at paper scale on an Atari-class workload (Table III's
    /// 256-sample batches, CNN-heavy service times).
    pub fn stellaris_paper_atari() -> Self {
        Self {
            minibatch: 256,
            timing: TimingProfile::atari_v100(),
            ..Self::stellaris_paper_mujoco()
        }
    }

    /// Stellaris on the §VIII-D HPC testbed (16 V100s, 960 actor cores).
    pub fn stellaris_hpc_atari() -> Self {
        let cluster = Cluster::hpc();
        Self {
            n_actors: cluster.actor_slots(),
            max_learners: cluster.learner_slots(),
            round_timesteps: cluster.actor_slots() * 1024,
            cluster,
            ..Self::stellaris_paper_atari()
        }
    }

    /// PAR-RL-style synchronous serverful training on the HPC testbed.
    pub fn parrl_hpc_atari() -> Self {
        let base = Self::stellaris_hpc_atari();
        Self {
            rule: AggregationRule::FullSync {
                n: base.max_learners,
            },
            sync_barrier: true,
            billing: SimBilling::Serverful,
            ..base
        }
    }

    /// A small deterministic configuration for tests.
    pub fn test_small() -> Self {
        Self {
            n_actors: 4,
            actor_steps: 64,
            minibatch: 64,
            max_learners: 2,
            rounds: 3,
            round_timesteps: 256,
            rule: AggregationRule::stellaris_default(),
            sync_barrier: false,
            cluster: Cluster::tiny(),
            billing: SimBilling::Serverless,
            timing: TimingProfile::test_flat(),
            seed: 7,
            param_shards: 1,
        }
    }
}

/// Per-round simulated metrics.
#[derive(Clone, Copy, Debug)]
pub struct SimRound {
    /// Round index.
    pub round: usize,
    /// Virtual seconds elapsed at round end.
    pub virtual_time_s: f64,
    /// Learner invocations so far.
    pub invocations: u64,
    /// Policy updates so far.
    pub updates: u64,
    /// Mean staleness of gradients aggregated during this round.
    pub mean_staleness: f64,
    /// Cumulative cost in USD.
    pub cost_usd: f64,
}

/// Full simulation output.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-round rows.
    pub rows: Vec<SimRound>,
    /// Total virtual duration in seconds.
    pub virtual_time_s: f64,
    /// Total learner billed seconds (includes sync barrier waits).
    pub learner_busy_s: f64,
    /// Total learner compute seconds (excludes barrier waits).
    pub learner_exec_s: f64,
    /// Total actor busy seconds.
    pub actor_busy_s: f64,
    /// Parameter-function busy seconds.
    pub parameter_busy_s: f64,
    /// Learner invocations.
    pub invocations: u64,
    /// Policy updates.
    pub updates: u64,
    /// Staleness of every aggregated gradient.
    pub staleness_log: Vec<u64>,
    /// GPU-slot utilisation (learner + parameter busy / slot-time).
    pub gpu_utilization: f64,
    /// Final cost under the configured billing.
    pub cost: CostBreakdown,
}

impl SimResult {
    /// Mean staleness over the whole run.
    pub fn mean_staleness(&self) -> f64 {
        if self.staleness_log.is_empty() {
            0.0
        } else {
            self.staleness_log.iter().sum::<u64>() as f64 / self.staleness_log.len() as f64
        }
    }
}

#[derive(Debug)]
enum EventKind {
    /// An actor's sampling cycle completed; its batch reaches the loader.
    ActorBatch { actor: usize, steps: usize },
    /// A learner finished one mini-batch gradient.
    LearnerDone { base_clock: u64, done_t: f64 },
}

struct Event {
    t: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap: earlier time first; sequence breaks ties deterministically.
        other
            .t
            .partial_cmp(&self.t)
            .unwrap_or(CmpOrdering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

struct PendingGrad {
    base_clock: u64,
    done_t: f64,
}

/// Runs the simulation to completion.
///
/// ```
/// use stellaris_simcluster::{simulate, SimConfig};
/// let result = simulate(&SimConfig::test_small());
/// assert_eq!(result.rows.len(), 3);
/// assert!(result.cost.total() > 0.0);
/// ```
pub fn simulate(cfg: &SimConfig) -> SimResult {
    assert!(cfg.n_actors > 0 && cfg.max_learners > 0 && cfg.rounds > 0 && cfg.param_shards > 0);
    // DESIGN.md §16: shards aggregate their block slices concurrently, so
    // the parameter function's per-update service time divides by the
    // shard count (1 = the classic single server, timing unchanged).
    let aggregate_us = cfg.timing.aggregate_us / cfg.param_shards as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0.0f64;

    let mut schedule = cfg.rule.make_schedule();
    let mut clock = 0u64;
    let mut updates = 0u64;
    let mut invocations = 0u64;
    let mut staleness_log: Vec<u64> = Vec::new();
    let mut round_staleness_start = 0usize;

    let mut backlog: Vec<usize> = Vec::new(); // pending mini-batch job sizes (samples)
    let mut pending: Vec<PendingGrad> = Vec::new();
    let mut free_learners = cfg.max_learners;
    let mut warm_containers = 0usize;

    let mut learner_busy = 0.0f64; // billed (includes sync barrier waits)
    let mut learner_exec = 0.0f64; // pure compute (for utilisation)
    let mut actor_busy = 0.0f64;
    let mut parameter_busy = 0.0f64;

    let mut round = 0usize;
    let quota_per_round = (cfg.round_timesteps / cfg.actor_steps).max(1) * cfg.actor_steps;
    let mut quota_left = quota_per_round;
    let mut inflight_steps = 0usize; // steps being sampled right now
    let mut rows: Vec<SimRound> = Vec::with_capacity(cfg.rounds);
    let mut actor_free: Vec<bool> = vec![true; cfg.n_actors];

    let jit = {
        let j = cfg.timing.jitter;
        move |rng: &mut ChaCha8Rng| {
            if j == 0.0 {
                1.0
            } else {
                rng.gen_range(1.0 - j..1.0 + j)
            }
        }
    };

    macro_rules! push_event {
        ($t:expr, $kind:expr) => {{
            seq += 1;
            heap.push(Event {
                t: $t,
                seq,
                kind: $kind,
            });
        }};
    }

    let cost_at =
        |learner_busy: f64, actor_busy: f64, parameter_busy: f64, now: f64| -> CostBreakdown {
            match cfg.billing {
                SimBilling::Serverless => CostBreakdown {
                    learner_usd: (learner_busy + parameter_busy) / 1e6
                        * cfg.cluster.learner_fn_price(),
                    actor_usd: actor_busy / 1e6 * cfg.cluster.actor_fn_price(),
                    wasted_usd: 0.0,
                },
                SimBilling::Serverful => {
                    let secs = now / 1e6;
                    CostBreakdown {
                        learner_usd: cfg.cluster.gpu_vms.itype.per_second()
                            * cfg.cluster.gpu_vms.count as f64
                            * secs,
                        actor_usd: cfg.cluster.cpu_vms.itype.per_second()
                            * cfg.cluster.cpu_vms.count as f64
                            * secs,
                        wasted_usd: 0.0,
                    }
                }
            }
        };

    // Kick off as many actor cycles as the first round's quota allows.
    macro_rules! start_actors {
        () => {
            // Sync baselines do not sample while learning is in flight.
            let barrier_blocked = cfg.sync_barrier
                && (!backlog.is_empty() || !pending.is_empty() || free_learners < cfg.max_learners);
            if !barrier_blocked {
                for a in 0..cfg.n_actors {
                    if actor_free[a] && quota_left >= cfg.actor_steps {
                        actor_free[a] = false;
                        quota_left -= cfg.actor_steps;
                        inflight_steps += cfg.actor_steps;
                        let sample =
                            cfg.actor_steps as f64 * cfg.timing.actor_step_us * jit(&mut rng);
                        let dur = cfg.timing.policy_pull_us + sample + cfg.timing.traj_push_us;
                        actor_busy += dur;
                        push_event!(
                            now + dur,
                            EventKind::ActorBatch {
                                actor: a,
                                steps: cfg.actor_steps
                            }
                        );
                    }
                }
            }
        };
    }

    macro_rules! dispatch_learners {
        () => {
            while free_learners > 0 && !backlog.is_empty() {
                let job_samples = backlog.pop().unwrap_or(cfg.minibatch);
                free_learners -= 1;
                invocations += 1;
                let startup = if warm_containers > 0 {
                    warm_containers -= 1;
                    cfg.timing.warm_start_us
                } else {
                    cfg.timing.cold_start_us
                };
                let exec = job_samples as f64 * cfg.timing.learner_us_per_sample * jit(&mut rng);
                learner_busy += exec; // startup is unbilled, as in §VIII-A
                learner_exec += exec;
                let done_t = now + startup + cfg.timing.policy_pull_us + exec;
                push_event!(
                    done_t,
                    EventKind::LearnerDone {
                        base_clock: clock,
                        done_t
                    }
                );
            }
        };
    }

    macro_rules! try_aggregate {
        () => {
            loop {
                let staleness: Vec<u64> = pending
                    .iter()
                    .map(|p| clock.saturating_sub(p.base_clock))
                    .collect();
                if let Some(s) = schedule.as_mut() {
                    for &d in &staleness {
                        s.observe(d);
                    }
                }
                if !cfg.rule.admits(&staleness, schedule.as_ref()) {
                    break;
                }
                let take = match cfg.rule {
                    AggregationRule::PureAsync | AggregationRule::Ssp { .. } => 1,
                    _ => pending.len(),
                };
                let batch: Vec<PendingGrad> = pending.drain(..take).collect();
                if cfg.sync_barrier {
                    // Synchronous learners bill until the wave completes.
                    let wave_end = batch.iter().fold(0.0f64, |m, g| m.max(g.done_t));
                    for g in &batch {
                        learner_busy += wave_end - g.done_t;
                    }
                }
                for g in &batch {
                    staleness_log.push(clock.saturating_sub(g.base_clock));
                }
                clock += 1;
                updates += 1;
                parameter_busy += aggregate_us;
            }
        };
    }

    start_actors!();

    while let Some(ev) = heap.pop() {
        now = ev.t;
        match ev.kind {
            EventKind::ActorBatch { actor, steps } => {
                actor_free[actor] = true;
                inflight_steps -= steps;
                // Split the batch into mini-batch jobs (last one may be short).
                let mut remaining = steps;
                while remaining > 0 {
                    let job = remaining.min(cfg.minibatch);
                    backlog.push(job);
                    remaining -= job;
                }
                dispatch_learners!();
                start_actors!();
            }
            EventKind::LearnerDone { base_clock, done_t } => {
                free_learners += 1;
                warm_containers += 1;
                pending.push(PendingGrad { base_clock, done_t });
                try_aggregate!();
                dispatch_learners!();
                start_actors!();
            }
        }

        // Partial final wave: when no more gradients can arrive, FullSync
        // lowers its barrier for the remainder (as the real orchestrator
        // does for the last wave of a round).
        if quota_left == 0
            && inflight_steps == 0
            && backlog.is_empty()
            && free_learners == cfg.max_learners
            && !pending.is_empty()
        {
            let batch: Vec<PendingGrad> = std::mem::take(&mut pending);
            if cfg.sync_barrier {
                let wave_end = batch.iter().fold(0.0f64, |m, g| m.max(g.done_t));
                for g in &batch {
                    learner_busy += wave_end - g.done_t;
                }
            }
            for g in &batch {
                staleness_log.push(clock.saturating_sub(g.base_clock));
            }
            clock += 1;
            updates += 1;
            parameter_busy += aggregate_us;
        }

        // Round boundary: quota fully sampled and (for sync) pipeline drained.
        let round_done = quota_left == 0
            && inflight_steps == 0
            && (!cfg.sync_barrier || (backlog.is_empty() && pending.is_empty() && heap.is_empty()));
        if round_done {
            let new = &staleness_log[round_staleness_start..];
            let mean = if new.is_empty() {
                0.0
            } else {
                new.iter().sum::<u64>() as f64 / new.len() as f64
            };
            round_staleness_start = staleness_log.len();
            let cost = cost_at(learner_busy, actor_busy, parameter_busy, now);
            rows.push(SimRound {
                round,
                virtual_time_s: now / 1e6,
                invocations,
                updates,
                mean_staleness: mean,
                cost_usd: cost.total(),
            });
            if let Some(s) = schedule.as_mut() {
                s.advance_round();
            }
            round += 1;
            if round >= cfg.rounds {
                break;
            }
            quota_left = quota_per_round;
            start_actors!();
        }
    }

    let gpu_slot_time = now * cfg.max_learners as f64;
    SimResult {
        rows,
        virtual_time_s: now / 1e6,
        learner_busy_s: learner_busy / 1e6,
        learner_exec_s: learner_exec / 1e6,
        actor_busy_s: actor_busy / 1e6,
        parameter_busy_s: parameter_busy / 1e6,
        invocations,
        updates,
        gpu_utilization: if gpu_slot_time > 0.0 {
            ((learner_exec + parameter_busy) / gpu_slot_time).min(1.0)
        } else {
            0.0
        },
        cost: cost_at(learner_busy, actor_busy, parameter_busy, now),
        staleness_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_completes_all_rounds() {
        let cfg = SimConfig::test_small();
        let res = simulate(&cfg);
        assert_eq!(res.rows.len(), 3);
        assert!(res.virtual_time_s > 0.0);
        assert!(res.updates > 0);
        // 3 rounds x 256 steps / 64 minibatch = 12 gradient jobs; the tail
        // of the final round may still be queued at shutdown, exactly like
        // the real orchestrator closing its work queue.
        assert!(
            res.invocations >= 8 && res.invocations <= 12,
            "{}",
            res.invocations
        );
        assert!(res.cost.total() > 0.0);
    }

    #[test]
    fn deterministic_without_jitter() {
        let cfg = SimConfig::test_small();
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.virtual_time_s, b.virtual_time_s);
        assert_eq!(a.staleness_log, b.staleness_log);
    }

    #[test]
    fn async_is_faster_than_sync_barrier() {
        let async_cfg = SimConfig::test_small();
        let sync_cfg = SimConfig {
            rule: AggregationRule::FullSync { n: 2 },
            sync_barrier: true,
            ..SimConfig::test_small()
        };
        let a = simulate(&async_cfg);
        let s = simulate(&sync_cfg);
        assert!(
            a.virtual_time_s < s.virtual_time_s,
            "overlapping learning with sampling must shorten the run: {} vs {}",
            a.virtual_time_s,
            s.virtual_time_s
        );
    }

    #[test]
    fn serverless_cheaper_than_serverful_at_paper_scale() {
        let st = simulate(&SimConfig::stellaris_paper_mujoco());
        let sf = simulate(&SimConfig::sync_serverful_paper_mujoco());
        assert!(
            st.cost.total() < sf.cost.total(),
            "Stellaris {} vs serverful {}",
            st.cost.total(),
            sf.cost.total()
        );
        // Paper's Fig. 8 reduction band: sanity check it is a real gap.
        let saving = 1.0 - st.cost.total() / sf.cost.total();
        assert!(saving > 0.1, "saving {saving}");
    }

    #[test]
    fn staleness_grows_with_learner_count() {
        let mk = |learners: usize| SimConfig {
            max_learners: learners,
            rule: AggregationRule::PureAsync,
            minibatch: 16,
            ..SimConfig::test_small()
        };
        let few = simulate(&mk(1));
        let many = simulate(&mk(8));
        assert!(
            many.mean_staleness() > few.mean_staleness(),
            "Fig. 3b: staleness must grow with the learner group: {} vs {}",
            few.mean_staleness(),
            many.mean_staleness()
        );
        assert_eq!(few.mean_staleness(), 0.0, "a single learner is never stale");
    }

    #[test]
    fn hpc_presets_reproduce_fig12_direction() {
        let st = simulate(&SimConfig {
            rounds: 5,
            ..SimConfig::stellaris_hpc_atari()
        });
        let pr = simulate(&SimConfig {
            rounds: 5,
            ..SimConfig::parrl_hpc_atari()
        });
        assert!(
            st.cost.total() < pr.cost.total(),
            "Stellaris must be cheaper on HPC"
        );
        assert!(
            st.virtual_time_s < pr.virtual_time_s,
            "and faster wall-clock"
        );
    }

    #[test]
    fn utilization_is_a_fraction() {
        let res = simulate(&SimConfig::stellaris_paper_mujoco());
        assert!(res.gpu_utilization > 0.0 && res.gpu_utilization <= 1.0);
        assert!(
            res.actor_busy_s > res.learner_busy_s,
            "sampling dominates MuJoCo"
        );
    }

    #[test]
    fn rounds_report_monotone_time_and_cost() {
        let res = simulate(&SimConfig::stellaris_paper_mujoco());
        for w in res.rows.windows(2) {
            assert!(w[1].virtual_time_s >= w[0].virtual_time_s);
            assert!(w[1].cost_usd >= w[0].cost_usd);
            assert!(w[1].invocations >= w[0].invocations);
        }
        assert_eq!(res.rows.len(), 50);
    }

    #[test]
    fn scale_preset_runs_thousands_of_learners() {
        let res = simulate(&SimConfig::stellaris_scale(4096));
        assert_eq!(res.rows.len(), 3, "all rounds must complete at 4k slots");
        assert!(res.updates > 0);
        assert!(
            res.invocations >= 1000,
            "thousands of learner slots must actually be exercised: {}",
            res.invocations
        );
        assert!(!res.staleness_log.is_empty());
    }

    #[test]
    fn sharding_divides_parameter_service_time() {
        let base = SimConfig::stellaris_scale(1024);
        let sharded = SimConfig {
            param_shards: 8,
            ..base.clone()
        };
        let a = simulate(&base);
        let b = simulate(&sharded);
        // Identical event schedule (shards change only the parameter
        // function's service-time accounting), 8x less busy time.
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.staleness_log, b.staleness_log);
        assert!(
            (b.parameter_busy_s - a.parameter_busy_s / 8.0).abs() < 1e-9,
            "8 shards must cut aggregation busy time 8x: {} vs {}",
            a.parameter_busy_s,
            b.parameter_busy_s
        );
    }

    #[test]
    fn cold_starts_only_until_pool_warms() {
        // With flat timing, the first max_learners dispatches are cold; the
        // virtual duration must exceed pure exec by at least one cold start.
        let cfg = SimConfig::test_small();
        let res = simulate(&cfg);
        let min_exec = 64.0 * 10.0 / 1e6; // one minibatch
        assert!(res.virtual_time_s > min_exec);
    }
}
