//! Timing profiles for the discrete-event simulation.
//!
//! The profile abstracts *how long things take* on the paper's testbed so
//! the pipeline's queueing behaviour, staleness and economics can be
//! replayed at full §VIII-A scale in virtual time. Numbers are estimates
//! calibrated to the paper's hardware class (V100 learners, EPYC actor
//! cores) and to this repo's measured per-sample costs; they matter only
//! relative to each other, and every one can be overridden.

/// Per-operation durations in microseconds of virtual time.
#[derive(Clone, Copy, Debug)]
pub struct TimingProfile {
    /// One environment step + policy inference on an actor core.
    pub actor_step_us: f64,
    /// Gradient computation per trajectory sample on a learner slot.
    pub learner_us_per_sample: f64,
    /// Parameter-function work per aggregation (fetch, fold, update, publish).
    pub aggregate_us: f64,
    /// Pulling the latest policy snapshot from the cache.
    pub policy_pull_us: f64,
    /// Publishing one actor batch of trajectories to the cache.
    pub traj_push_us: f64,
    /// Warm container start.
    pub warm_start_us: f64,
    /// Cold container start.
    pub cold_start_us: f64,
    /// Multiplicative execution-time jitter half-range (0.2 = ±20%).
    pub jitter: f64,
}

impl TimingProfile {
    /// MuJoCo-class workload on the paper's regular testbed: cheap physics
    /// steps, 2x256 MLP gradients on a quarter-V100 learner slot.
    pub fn mujoco_v100() -> Self {
        Self {
            actor_step_us: 300.0,
            learner_us_per_sample: 40.0,
            aggregate_us: 20_000.0,
            policy_pull_us: 5_000.0,
            traj_push_us: 8_000.0,
            warm_start_us: 8_000.0,
            cold_start_us: 1_500_000.0,
            jitter: 0.25,
        }
    }

    /// Atari-class workload: frame rendering + CNN inference per step and
    /// convolutional gradients per sample.
    pub fn atari_v100() -> Self {
        Self {
            actor_step_us: 2_000.0,
            learner_us_per_sample: 400.0,
            aggregate_us: 35_000.0,
            policy_pull_us: 9_000.0,
            traj_push_us: 30_000.0,
            ..Self::mujoco_v100()
        }
    }

    /// A deterministic profile for unit tests (no jitter, round numbers).
    pub fn test_flat() -> Self {
        Self {
            actor_step_us: 100.0,
            learner_us_per_sample: 10.0,
            aggregate_us: 1_000.0,
            policy_pull_us: 500.0,
            traj_push_us: 500.0,
            warm_start_us: 100.0,
            cold_start_us: 10_000.0,
            jitter: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_sensibly() {
        let m = TimingProfile::mujoco_v100();
        let a = TimingProfile::atari_v100();
        assert!(
            a.actor_step_us > m.actor_step_us,
            "pixels cost more to produce"
        );
        assert!(
            a.learner_us_per_sample > m.learner_us_per_sample,
            "convs cost more"
        );
        assert!(
            m.cold_start_us > 100.0 * m.warm_start_us,
            "cold starts dominate"
        );
    }
}
