//! Property-based tests for the discrete-event simulator: monotonicity of
//! cost and time in the knobs that should drive them, and invariants of the
//! virtual pipeline.

use proptest::prelude::*;
use stellaris_core::AggregationRule;
use stellaris_simcluster::{simulate, SimBilling, SimConfig, TimingProfile};

fn base(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ..SimConfig::test_small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Slower actors can never shorten the run.
    #[test]
    fn time_monotone_in_actor_step_cost(mult in 1.0f64..8.0, seed in 0u64..50) {
        let fast = simulate(&base(seed));
        let mut cfg = base(seed);
        cfg.timing = TimingProfile {
            actor_step_us: cfg.timing.actor_step_us * mult,
            ..cfg.timing
        };
        let slow = simulate(&cfg);
        prop_assert!(slow.virtual_time_s >= fast.virtual_time_s - 1e-9);
    }

    /// Serverful billing dominates serverless for the same schedule.
    #[test]
    fn serverful_never_cheaper(seed in 0u64..50) {
        let sl = simulate(&SimConfig { billing: SimBilling::Serverless, ..base(seed) });
        let sf = simulate(&SimConfig { billing: SimBilling::Serverful, ..base(seed) });
        // The schedule is identical (same seed, same rule); only the bill
        // changes, and idle time is never free on reserved VMs.
        prop_assert!(sf.cost.total() >= sl.cost.total());
    }

    /// Staleness can never be negative and updates never exceed invocations.
    #[test]
    fn accounting_invariants(
        learners in 1usize..6,
        actors in 1usize..6,
        seed in 0u64..50,
    ) {
        let cfg = SimConfig {
            max_learners: learners,
            n_actors: actors,
            rule: AggregationRule::PureAsync,
            ..base(seed)
        };
        let r = simulate(&cfg);
        prop_assert!(r.updates <= r.invocations);
        prop_assert!(r.staleness_log.len() as u64 <= r.invocations);
        prop_assert!(r.gpu_utilization >= 0.0 && r.gpu_utilization <= 1.0);
        prop_assert!(r.learner_exec_s <= r.learner_busy_s + 1e-9);
        for w in r.rows.windows(2) {
            prop_assert!(w[1].virtual_time_s >= w[0].virtual_time_s);
            prop_assert!(w[1].cost_usd >= w[0].cost_usd - 1e-12);
        }
    }

    /// The Eq. 3 schedule can only delay updates relative to pure asynchrony
    /// (same arrivals, stricter admission), never create more.
    #[test]
    fn staleness_aware_never_updates_more_than_pure_async(seed in 0u64..50) {
        let pure = simulate(&SimConfig {
            rule: AggregationRule::PureAsync,
            ..base(seed)
        });
        let aware = simulate(&SimConfig {
            rule: AggregationRule::stellaris_default(),
            ..base(seed)
        });
        prop_assert!(aware.updates <= pure.updates);
    }
}
